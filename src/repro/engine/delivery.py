"""Health-aware adaptive delivery: brownout backoff, admission control,
and the graceful-degradation ladder.

The paper's two headline observations collide badly in the seed engine:
§4 shows T2A is dominated by the polling interval, and §6 shows partner
outages/brownouts are the dominant failure mode — yet a poller that
keeps its §4 cadence against a browning-out service turns every failed
poll into a capped-exponential retry burst, multiplying load on the
exact service least able to take it.  The circuit breaker only blunts
*total* failure: a 50% brownout never produces the consecutive-failure
run that trips it, so the storm rages with the breaker closed.

This module closes that gap with three cooperating pieces, all owned by
one :class:`DeliveryController` per engine (per *shard* in a fleet):

:class:`ServiceHealth`
    A per-(service, engine) tracker fed by every poll/action outcome,
    observed brownout rejections (the 503 bodies
    ``service.brownout_rejections`` stamps on the wire), and breaker
    transitions.  It maintains an EWMA error rate and a multiplicative
    *stretch* factor: capped-exponential growth while the error EWMA is
    above the degrade threshold, multiplicative decay back to exactly
    ``1.0`` once the service strings together consecutive successes.

:class:`AdaptiveDeliveryPolicy`
    A :class:`~repro.engine.poller.PollingPolicy` wrapper — it wraps
    *any* base policy, so production-lognormal, fixed-rate, and
    activity-adaptive pollers all gain brownout backoff without code
    changes.  When the service is healthy (stretch == 1.0) it returns
    the base policy's draw **verbatim, consuming no extra randomness**,
    which is how the §4 interval distribution is provably restored
    post-recovery: after heal the wrapper is byte-equivalent to its
    base.  When stretched, the base draw is multiplied by the jittered
    stretch factor.  While the breaker is OPEN or HALF_OPEN the factor
    is forced back to 1.0 so the recovery probe keeps the *baseline*
    cadence — stretching a poll that the breaker sheds locally anyway
    would only delay the half-open probe.

Admission control (on the controller)
    Watermarked ingestion bounds on the two queues that grow without
    limit under degradation:

    * the **realtime-hint queue** — each honoured hint identity is one
      outstanding fast poll; at/above the low watermark new fast polls
      are *deferred* (scheduled ``hint_defer_delay`` out instead of
      immediately), at/above the high watermark hints are *shed to
      polling* (the identity waits for its regular cadence);
    * the **action retry queue** — per-service retry depth at/above the
      low watermark defers (multiplies the backoff), at/above the high
      watermark new retries are refused and the action dead-letters
      with reason ``overload``.  Replay drains respect the same
      headroom (:meth:`DeliveryController.replay_headroom`), so a
      catch-up burst cannot overrun the queue either.

The controller exposes the **4-level degradation ladder** per service as
the ``{ns}.degradation_level`` gauge (0 healthy → 1 stretched →
2 shedding → 3 breaker-open), counts every transition in
``{ns}.degradation_transitions`` and traces it — the shard-prefix
snapshot algebra of ``docs/SHARDING.md`` folds both families fleet-wide
with no new code (counters add; the gauge's max-merge reports the worst
shard, which is the right fleet answer for a degradation level).

Determinism contract: with :attr:`EngineConfig.delivery_policy` unset
(the default) none of this code runs, no metric families appear, and no
RNG is consumed — the ``chaos-check``/``replay-check``/dispatch gates
stay byte-identical.  With adaptation on, all randomness (stretch
jitter) comes from the engine's seeded RNG, so ``make degrade-check``
pins a byte-identical snapshot for the brownout scenario too.

See ``docs/ROBUSTNESS.md`` ("Adaptive delivery & degradation ladder").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.engine.poller import PollingPolicy
from repro.engine.resilience import BreakerState
from repro.simcore.rng import Rng, quantiles

#: The degradation ladder, least to most degraded.
DEGRADATION_HEALTHY = 0
DEGRADATION_STRETCHED = 1
DEGRADATION_SHEDDING = 2
DEGRADATION_BREAKER_OPEN = 3

#: Gauge value -> human name (traces and reports).
DEGRADATION_LEVEL_NAMES: Tuple[str, ...] = (
    "healthy", "stretched", "shedding", "breaker_open",
)

#: The paper's §4 T2A quartiles for poll-bound applets — the latency
#: distribution the baseline (unstretched) polling interval induces.
#: The post-heal acceptance check is anchored here: once stretch decays
#: to 1.0 the sampled interval distribution is byte-identical to the
#: base policy's, so the T2A it induces returns to this baseline.
T2A_BASELINE_QUARTILES: Tuple[float, float, float] = (58.0, 84.0, 122.0)

#: Wire marker a browning-out service stamps on its 503 rejections
#: (see ``PartnerService._check_outage``); the engine sniffs it to feed
#: ``ServiceHealth.brownouts_observed`` without a back-channel.
BROWNOUT_MESSAGE = "service browning out"


def response_is_brownout(response) -> bool:
    """Whether a failed HTTP response is a brownout rejection."""
    if response.status != 503:
        return False
    errors = (response.body or {}).get("errors", ())
    return any(e.get("message") == BROWNOUT_MESSAGE for e in errors)


@dataclass(frozen=True)
class DeliveryPolicy:
    """Tunables for health-aware adaptive delivery.

    Attributes
    ----------
    ewma_alpha:
        Weight of the newest poll/action outcome in the error-rate EWMA
        (failure = 1, success = 0).
    degrade_threshold:
        Error EWMA at/above which a failure multiplies the stretch
        factor (capped-exponential growth).
    recovery_successes:
        Consecutive successes required before each subsequent success
        decays the stretch factor — brief lucky streaks during a
        brownout don't un-stretch the poller.
    stretch_multiplier, max_stretch, stretch_decay, stretch_jitter:
        Stretch dynamics: grow ``×multiplier`` per qualifying failure up
        to ``max_stretch``; decay ``×decay`` per qualifying success,
        snapping to exactly 1.0; jitter the applied factor by
        ``±stretch_jitter`` (a fraction) so stretched fleets
        decorrelate instead of thundering in phase.
    hint_low_watermark, hint_high_watermark, hint_defer_delay:
        Realtime-hint admission: with ``backlog`` outstanding fast
        polls for a service, a new hint identity is admitted
        immediately below the low watermark, *deferred* by
        ``hint_defer_delay`` seconds in [low, high), and *shed to
        polling* at/above the high watermark.
    retry_low_watermark, retry_high_watermark:
        Action-retry admission: per-service retry depth in [low, high)
        multiplies the retry backoff by ``stretch_multiplier``
        (defer); at/above high a new retry is refused and the action
        dead-letters with reason ``overload``.
    replay_drain_backoff:
        Seconds a replay drain waits before re-trying when the retry
        queue has no headroom (see ``docs/ROBUSTNESS.md``).
    """

    ewma_alpha: float = 0.3
    degrade_threshold: float = 0.3
    recovery_successes: int = 2
    stretch_multiplier: float = 3.0
    max_stretch: float = 8.0
    stretch_decay: float = 0.5
    stretch_jitter: float = 0.1
    hint_low_watermark: int = 8
    hint_high_watermark: int = 32
    hint_defer_delay: float = 5.0
    retry_low_watermark: int = 16
    retry_high_watermark: int = 64
    replay_drain_backoff: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if not 0.0 < self.degrade_threshold <= 1.0:
            raise ValueError(
                f"degrade_threshold must be in (0, 1], got {self.degrade_threshold}"
            )
        if self.recovery_successes < 1:
            raise ValueError(
                f"recovery_successes must be >= 1, got {self.recovery_successes}"
            )
        if self.stretch_multiplier <= 1.0:
            raise ValueError(
                f"stretch_multiplier must be > 1, got {self.stretch_multiplier}"
            )
        if self.max_stretch < self.stretch_multiplier:
            raise ValueError(
                f"max_stretch must be >= stretch_multiplier, got {self.max_stretch}"
            )
        if not 0.0 < self.stretch_decay < 1.0:
            raise ValueError(
                f"stretch_decay must be in (0, 1), got {self.stretch_decay}"
            )
        if not 0.0 <= self.stretch_jitter < 1.0:
            raise ValueError(
                f"stretch_jitter must be in [0, 1), got {self.stretch_jitter}"
            )
        if not 0 <= self.hint_low_watermark <= self.hint_high_watermark:
            raise ValueError(
                "need 0 <= hint_low_watermark <= hint_high_watermark, got "
                f"{self.hint_low_watermark}, {self.hint_high_watermark}"
            )
        if not 0 <= self.retry_low_watermark <= self.retry_high_watermark:
            raise ValueError(
                "need 0 <= retry_low_watermark <= retry_high_watermark, got "
                f"{self.retry_low_watermark}, {self.retry_high_watermark}"
            )
        if self.hint_defer_delay < 0 or self.replay_drain_backoff < 0:
            raise ValueError("hint_defer_delay/replay_drain_backoff must be >= 0")


class ServiceHealth:
    """One service's health as one engine observes it.

    Shared by every :class:`AdaptiveDeliveryPolicy` wrapper for the
    service's applets on that engine — health is per-(service, engine),
    not per applet, so one applet's failed poll slows *all* polls aimed
    at the degraded service.
    """

    __slots__ = (
        "policy",
        "slug",
        "error_ewma",
        "stretch",
        "breaker_level",
        "consecutive_successes",
        "successes",
        "failures",
        "brownouts_observed",
        "stretched_samples",
    )

    def __init__(self, policy: DeliveryPolicy, slug: str) -> None:
        self.policy = policy
        self.slug = slug
        self.error_ewma = 0.0
        self.stretch = 1.0
        #: Mirror of the service breaker's state level (0/1/2); fed by
        #: the engine's transition hook.
        self.breaker_level = 0
        self.consecutive_successes = 0
        self.successes = 0
        self.failures = 0
        self.brownouts_observed = 0
        self.stretched_samples = 0

    @property
    def degraded(self) -> bool:
        """Whether poll intervals for this service are being stretched."""
        return self.stretch > 1.0

    def record_success(self) -> None:
        """A poll/action against the service succeeded.

        The stretch only decays once the error EWMA itself has dropped
        back below the degrade threshold *and* the service has strung
        together ``recovery_successes`` wins — a lucky pair of 200s in
        the middle of a 50% brownout keeps the EWMA hot and therefore
        keeps the backoff in place, while a genuine heal clears both
        conditions within a few polls.
        """
        policy = self.policy
        self.successes += 1
        self.consecutive_successes += 1
        self.error_ewma *= 1.0 - policy.ewma_alpha
        if (
            self.stretch > 1.0
            and self.error_ewma < policy.degrade_threshold
            and self.consecutive_successes >= policy.recovery_successes
        ):
            decayed = self.stretch * policy.stretch_decay
            self.stretch = 1.0 if decayed <= 1.0 else decayed

    def record_failure(self, brownout: bool = False) -> None:
        """A poll/action against the service failed."""
        policy = self.policy
        self.failures += 1
        self.consecutive_successes = 0
        if brownout:
            self.brownouts_observed += 1
        self.error_ewma = policy.ewma_alpha + (1.0 - policy.ewma_alpha) * self.error_ewma
        if self.error_ewma >= policy.degrade_threshold:
            self.stretch = min(
                policy.max_stretch, self.stretch * policy.stretch_multiplier
            )

    def on_breaker_transition(self, new: BreakerState) -> None:
        """Mirror the breaker's state; OPEN/HALF_OPEN suspend stretching
        (see :meth:`stretch_factor`)."""
        self.breaker_level = new.level

    def stretch_factor(self, rng: Optional[Rng] = None) -> float:
        """The multiplier to apply to the next poll/retry delay.

        Exactly ``1.0`` — with **no RNG draw** — while healthy, so a
        healed service's interval stream is byte-identical to the base
        policy's.  Also ``1.0`` while the breaker is OPEN or HALF_OPEN:
        the breaker already sheds locally, and the baseline cadence is
        what gets the half-open probe out promptly.
        """
        if self.stretch <= 1.0 or self.breaker_level != 0:
            return 1.0
        self.stretched_samples += 1
        factor = self.stretch
        jitter = self.policy.stretch_jitter
        if rng is not None and jitter > 0.0:
            factor *= 1.0 + rng.uniform(-jitter, jitter)
        return factor if factor > 1.0 else 1.0

    def __repr__(self) -> str:
        return (
            f"<ServiceHealth {self.slug} ewma={self.error_ewma:.3f} "
            f"stretch={self.stretch:g} breaker={self.breaker_level}>"
        )


class AdaptiveDeliveryPolicy(PollingPolicy):
    """Wrap any polling policy with health-driven interval stretching.

    ``next_interval`` is ``base.next_interval(rng) * health.stretch_factor(rng)``
    — with the crucial special case that a factor of 1.0 applies no
    multiplication and consumes no randomness, so the wrapper is
    *byte-equivalent* to its base policy whenever the service is
    healthy (including after every recovery).
    """

    def __init__(self, base: PollingPolicy, health: ServiceHealth) -> None:
        self.base = base
        self.health = health

    def next_interval(self, rng: Rng) -> float:
        interval = self.base.next_interval(rng)
        factor = self.health.stretch_factor(rng)
        return interval if factor == 1.0 else interval * factor

    def observe_events(self, count: int) -> None:
        self.base.observe_events(count)

    def clone(self) -> "AdaptiveDeliveryPolicy":
        """Fresh wrapper around a fresh base clone, *sharing* the health
        tracker — per-applet policy state stays private while the
        per-service health signal stays shared."""
        return AdaptiveDeliveryPolicy(self.base.clone(), self.health)

    def __repr__(self) -> str:
        return f"AdaptiveDeliveryPolicy({self.base!r}, service={self.health.slug!r})"


def sampled_interval_quartiles(
    policy: PollingPolicy, seed: int = 1234, samples: int = 2000
) -> Tuple[float, float, float]:
    """(q1, median, q3) of ``samples`` fresh interval draws.

    Used by the degrade gate to prove post-heal restoration: sampling a
    healed :class:`AdaptiveDeliveryPolicy` and its bare base policy with
    identically-seeded RNGs must give identical quartiles (the wrapper
    consumes no extra randomness at stretch 1.0).
    """
    rng = Rng(seed=seed, name="interval-probe")
    values = [policy.next_interval(rng) for _ in range(samples)]
    q1, q2, q3 = quantiles(values, (0.25, 0.5, 0.75))
    return (q1, q2, q3)


#: Hint-admission verdicts, in increasing severity.
HINT_ALLOW = "allow"
HINT_DEFER = "defer"
HINT_SHED = "shed"


class DeliveryController:
    """Per-engine owner of service health, admission, and the ladder.

    Created by :class:`~repro.engine.engine.IftttEngine` when
    :attr:`EngineConfig.delivery_policy` is set; every shard of a
    :class:`~repro.engine.sharding.ShardedEngine` gets its own (health
    and queues are shard-local, like breakers and retry state).
    """

    def __init__(self, engine, policy: DeliveryPolicy) -> None:
        self.engine = engine
        self.policy = policy
        self._health: Dict[str, ServiceHealth] = {}
        #: Current ladder level per service (mirrors the gauge).
        self._levels: Dict[str, int] = {}
        #: Outstanding hint-induced fast polls per service.
        self.hint_backlog: Dict[str, int] = {}
        #: Parked retry records per service (mirrors the engine's retry
        #: ledger, split by service for the watermark checks).
        self.retry_depth: Dict[str, int] = {}
        #: In-replay records per service (replay drains respect the
        #: retry-queue watermark; see :meth:`replay_headroom`).
        self.replay_depth: Dict[str, int] = {}
        self.hints_deferred = 0
        self.hints_shed = 0
        self.retries_deferred = 0
        self.overload_dead_letters = 0
        self.replay_drains_deferred = 0

    # -- health ---------------------------------------------------------------

    def health_for(self, slug: str) -> ServiceHealth:
        """The (lazily created) health tracker for one service."""
        health = self._health.get(slug)
        if health is None:
            health = self._health[slug] = ServiceHealth(self.policy, slug)
            self._levels[slug] = DEGRADATION_HEALTHY
            engine = self.engine
            if engine.metrics is not None:
                engine.metrics.gauge(
                    f"{engine.metrics_namespace}.degradation_level", service=slug
                ).set(DEGRADATION_HEALTHY)
        return health

    def healths(self) -> Dict[str, ServiceHealth]:
        """Every tracked service's health, keyed by slug."""
        return dict(self._health)

    def wrap(self, base: PollingPolicy, slug: str) -> AdaptiveDeliveryPolicy:
        """An adaptive wrapper around ``base`` bound to ``slug``'s health."""
        return AdaptiveDeliveryPolicy(base, self.health_for(slug))

    def note_result(self, slug: str, ok: bool, brownout: bool = False) -> None:
        """Feed one poll/action outcome into the service's health."""
        health = self.health_for(slug)
        if ok:
            health.record_success()
        else:
            health.record_failure(brownout=brownout)
            if brownout:
                engine = self.engine
                if engine.metrics is not None:
                    engine.metrics.counter(
                        f"{engine.metrics_namespace}.delivery.brownouts_observed",
                        service=slug,
                    ).inc()
        self.refresh_level(slug)

    def on_breaker_transition(
        self, slug: str, old: BreakerState, new: BreakerState
    ) -> None:
        """Mirror breaker transitions into health and the ladder."""
        self.health_for(slug).on_breaker_transition(new)
        self.refresh_level(slug)

    def stretch_retry_delay(self, slug: str, delay: float, rng: Rng) -> float:
        """Stretch a retry backoff by the service's health factor.

        This is the anti-retry-storm half of adaptation: a browning-out
        service's retry bursts spread out by the same multiplier its
        regular polls do.  At/above the retry low watermark the delay is
        additionally multiplied by ``stretch_multiplier`` (defer), so a
        filling queue drains slower than it grows.
        """
        factor = self.health_for(slug).stretch_factor(rng)
        if self.retry_depth.get(slug, 0) >= self.policy.retry_low_watermark:
            factor *= self.policy.stretch_multiplier
            self.retries_deferred += 1
            engine = self.engine
            if engine.metrics is not None:
                engine.metrics.counter(
                    f"{engine.metrics_namespace}.delivery.retries_deferred",
                    service=slug,
                ).inc()
        return delay if factor == 1.0 else delay * factor

    # -- the degradation ladder ------------------------------------------------

    def level_of(self, slug: str) -> int:
        """Current ladder level for one service (0..3)."""
        return self._levels.get(slug, DEGRADATION_HEALTHY)

    def levels(self) -> Dict[str, int]:
        """Every tracked service's ladder level."""
        return dict(self._levels)

    def _compute_level(self, slug: str) -> int:
        health = self._health.get(slug)
        if health is not None and health.breaker_level == BreakerState.OPEN.level:
            return DEGRADATION_BREAKER_OPEN
        if (
            self.hint_backlog.get(slug, 0) >= self.policy.hint_high_watermark
            or self.retry_depth.get(slug, 0) >= self.policy.retry_high_watermark
        ):
            return DEGRADATION_SHEDDING
        if health is not None and health.degraded:
            return DEGRADATION_STRETCHED
        return DEGRADATION_HEALTHY

    def refresh_level(self, slug: str) -> None:
        """Recompute the ladder level; emit gauge/counter/trace on change."""
        new = self._compute_level(slug)
        old = self._levels.get(slug, DEGRADATION_HEALTHY)
        if new == old:
            return
        self._levels[slug] = new
        engine = self.engine
        ns = engine.metrics_namespace
        if engine.metrics is not None:
            engine.metrics.gauge(f"{ns}.degradation_level", service=slug).set(new)
            engine.metrics.counter(
                f"{ns}.degradation_transitions",
                service=slug,
                from_level=DEGRADATION_LEVEL_NAMES[old],
                to_level=DEGRADATION_LEVEL_NAMES[new],
            ).inc()
            engine.metrics.gauge(f"{ns}.delivery.stretch", service=slug).set(
                self.health_for(slug).stretch
            )
        if engine.trace is not None:
            engine.trace.record(
                engine.now,
                ns,
                "engine_degradation_transition",
                service=slug,
                from_level=DEGRADATION_LEVEL_NAMES[old],
                to_level=DEGRADATION_LEVEL_NAMES[new],
            )

    # -- admission: realtime-hint queue -----------------------------------------

    def admit_hint(self, slug: str) -> str:
        """Admission verdict for one honoured hint identity.

        Consulted *per identity* (each identity is one outstanding fast
        poll), so a single huge hint burst walks the ladder rung by
        rung: allow → defer → shed.
        """
        backlog = self.hint_backlog.get(slug, 0)
        engine = self.engine
        ns = engine.metrics_namespace
        if backlog >= self.policy.hint_high_watermark:
            self.hints_shed += 1
            if engine.metrics is not None:
                engine.metrics.counter(
                    f"{ns}.delivery.hints_shed", service=slug
                ).inc()
            if engine.trace is not None:
                engine.trace.record(
                    engine.now, ns, "engine_hint_shed",
                    service=slug, backlog=backlog,
                )
            self.refresh_level(slug)
            return HINT_SHED
        if backlog >= self.policy.hint_low_watermark:
            self.hints_deferred += 1
            if engine.metrics is not None:
                engine.metrics.counter(
                    f"{ns}.delivery.hints_deferred", service=slug
                ).inc()
            if engine.trace is not None:
                engine.trace.record(
                    engine.now, ns, "engine_hint_deferred",
                    service=slug, backlog=backlog,
                )
            return HINT_DEFER
        return HINT_ALLOW

    def note_fast_poll_scheduled(self, slug: str) -> None:
        self.hint_backlog[slug] = self.hint_backlog.get(slug, 0) + 1
        self.refresh_level(slug)

    def note_fast_poll_done(self, slug: str) -> None:
        """A hint-induced fast poll fired (or was cancelled)."""
        remaining = self.hint_backlog.get(slug, 0) - 1
        self.hint_backlog[slug] = remaining if remaining > 0 else 0
        self.refresh_level(slug)

    # -- admission: action retry queue ------------------------------------------

    def admit_retry(self, slug: str) -> bool:
        """Whether a failed action may join the retry queue.

        ``False`` means the per-service depth is at/above the high
        watermark: the caller dead-letters with reason ``overload``.
        """
        if self.retry_depth.get(slug, 0) < self.policy.retry_high_watermark:
            return True
        self.overload_dead_letters += 1
        engine = self.engine
        if engine.metrics is not None:
            engine.metrics.counter(
                f"{engine.metrics_namespace}.delivery.overload_dead_letters",
                service=slug,
            ).inc()
        self.refresh_level(slug)
        return False

    def note_retry_enqueued(self, slug: str) -> None:
        self.retry_depth[slug] = self.retry_depth.get(slug, 0) + 1
        self.refresh_level(slug)

    def note_retry_dequeued(self, slug: str) -> None:
        remaining = self.retry_depth.get(slug, 0) - 1
        self.retry_depth[slug] = remaining if remaining > 0 else 0
        self.refresh_level(slug)

    # -- admission: replay drains ------------------------------------------------

    def replay_headroom(self, slug: str) -> int:
        """How many dead letters a replay drain may put in flight now.

        Replay records share the retry queue's high watermark: a drain
        may not push ``retry_depth + replay_depth`` past it, so catch-up
        bursts cannot overrun the queue that ordinary failures respect.
        """
        used = self.retry_depth.get(slug, 0) + self.replay_depth.get(slug, 0)
        return max(0, self.policy.retry_high_watermark - used)

    def note_replay_enqueued(self, slug: str, count: int) -> None:
        self.replay_depth[slug] = self.replay_depth.get(slug, 0) + count

    def note_replay_dequeued(self, slug: str, count: int = 1) -> None:
        remaining = self.replay_depth.get(slug, 0) - count
        self.replay_depth[slug] = remaining if remaining > 0 else 0

    def note_replay_drain_deferred(self, slug: str) -> None:
        self.replay_drains_deferred += 1
        engine = self.engine
        ns = engine.metrics_namespace
        if engine.metrics is not None:
            engine.metrics.counter(
                f"{ns}.replay.drains_deferred", service=slug
            ).inc()
        if engine.trace is not None:
            engine.trace.record(
                engine.now, ns, "engine_replay_drain_deferred",
                service=slug, headroom=self.replay_headroom(slug),
            )

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counter snapshot folded into :meth:`IftttEngine.stats`."""
        return {
            "delivery_hints_deferred": self.hints_deferred,
            "delivery_hints_shed": self.hints_shed,
            "delivery_retries_deferred": self.retries_deferred,
            "delivery_overload_dead_letters": self.overload_dead_letters,
            "delivery_replay_drains_deferred": self.replay_drains_deferred,
            "delivery_intervals_stretched": sum(
                h.stretched_samples for h in self._health.values()
            ),
        }

    def __repr__(self) -> str:
        degraded = sorted(s for s, h in self._health.items() if h.degraded)
        return (
            f"<DeliveryController services={len(self._health)} "
            f"degraded={degraded}>"
        )
