"""Heap-scheduler vs per-applet-timer dispatch equivalence (ISSUE 6).

The heap scheduler's whole contract is *observational equivalence*: for
the same seed and corpus it must fire the same polls at the same
simulation times in the same order as the seed's per-applet timers,
consuming the engine RNG identically — so traces, T2A samples, and
deterministic metric snapshots (filtered through
:func:`~repro.obs.metrics.dispatch_invariant_snapshot`) are identical,
and only wall-clock gauges plus the kernel event counters in
:data:`~repro.obs.metrics.DISPATCH_SENSITIVE_METRICS` may differ.

This suite pins that contract with hypothesis over seeds and corpus
shapes, end-to-end over the fleet workload, across all three shard
strategies, plus the `sample_interval` bound-histogram cache regression
(satellite: handle identity under shard namespacing).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    ActionRef,
    EngineConfig,
    FixedPollingPolicy,
    ProductionPollingPolicy,
    SHARD_STRATEGIES,
    ShardedEngine,
    TriggerRef,
)
from repro.engine.engine import _AppletRuntime
from repro.engine.applet import Applet
from repro.engine.oauth import OAuthAuthority
from repro.engine.scheduler import (
    HeapPollScheduler,
    POLL_DISPATCH_MODES,
    TimerPollScheduler,
    make_poll_scheduler,
)
from repro.net import Address, FixedLatency, Network
from repro.obs.metrics import (
    DISPATCH_SENSITIVE_METRICS,
    MetricsRegistry,
    dispatch_invariant_snapshot,
)
from repro.services import ActionEndpoint, PartnerService, TriggerEndpoint
from repro.simcore import Rng, Simulator
from repro.testbed.workload import FleetWorld


def snapshot_blob(metrics) -> bytes:
    """Canonical bytes of the dispatch-invariant part of a registry."""
    return json.dumps(dispatch_invariant_snapshot(metrics), sort_keys=True).encode()


# -- scheduler-level harness ----------------------------------------------------


class StubEngine:
    """The minimal surface the schedulers need: sim, ``_poll``, ``_applets``."""

    def __init__(self, mode: str):
        self.sim = Simulator()
        self._applets = {}
        self._scheduler = make_poll_scheduler(self, mode)
        self.fired = []

    def add_runtime(self, applet_id: int) -> _AppletRuntime:
        applet = Applet(
            applet_id=applet_id,
            name=f"a{applet_id}",
            user="u",
            trigger=TriggerRef("svc", "t"),
            action=ActionRef("svc", "a", {}),
        )
        runtime = _AppletRuntime(applet=applet, policy=FixedPollingPolicy(10.0))
        self._applets[applet_id] = runtime
        return runtime

    def _poll(self, runtime):
        self.fired.append((self.sim.now, runtime.applet.applet_id))


class TestFactoryAndConfig:
    def test_modes_registry(self):
        assert POLL_DISPATCH_MODES == ("heap", "timers")

    def test_factory_builds_each_mode(self):
        assert isinstance(make_poll_scheduler(StubEngine("heap"), "heap"),
                          HeapPollScheduler)
        assert isinstance(make_poll_scheduler(StubEngine("heap"), "timers"),
                          TimerPollScheduler)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_poll_scheduler(StubEngine("heap"), "calendar")

    def test_config_rejects_unknown(self):
        with pytest.raises(ValueError):
            EngineConfig(poll_dispatch="cron")

    def test_config_defaults_to_heap(self):
        assert EngineConfig().poll_dispatch == "heap"

    def test_negative_delay_rejected(self):
        engine = StubEngine("heap")
        runtime = engine.add_runtime(1)
        with pytest.raises(ValueError):
            engine._scheduler.schedule(runtime, -1.0)


class TestHeapSchedulerSemantics:
    def test_same_instant_polls_batch_under_one_wake(self):
        engine = StubEngine("heap")
        runtimes = [engine.add_runtime(i) for i in range(50)]
        for runtime in runtimes:
            engine._scheduler.schedule(runtime, 5.0)
        engine.sim.run()
        stats = engine._scheduler.stats()
        assert stats["wakes"] == 1
        assert stats["batched_polls"] == 50
        # FIFO within the instant: scheduling order is firing order
        assert engine.fired == [(5.0, i) for i in range(50)]

    def test_timer_mode_fires_identically(self):
        heap_engine, timer_engine = StubEngine("heap"), StubEngine("timers")
        for engine in (heap_engine, timer_engine):
            for i in range(20):
                runtime = engine.add_runtime(i)
                engine._scheduler.schedule(runtime, 1.0 + (i % 7) * 0.5)
            engine.sim.run()
        assert heap_engine.fired == timer_engine.fired

    def test_reschedule_supersedes_earlier_entry(self):
        engine = StubEngine("heap")
        runtime = engine.add_runtime(1)
        engine._scheduler.schedule(runtime, 8.0)
        engine._scheduler.schedule(runtime, 2.0)  # hint pulls the poll earlier
        engine.sim.run()
        assert engine.fired == [(2.0, 1)]
        stats = engine._scheduler.stats()
        assert stats["stale_entries"] == 0  # stale entry consumed on pop

    def test_cancel_is_lazy_and_accounted(self):
        engine = StubEngine("heap")
        runtime = engine.add_runtime(1)
        engine._scheduler.schedule(runtime, 3.0)
        engine._scheduler.cancel(runtime)
        assert engine._scheduler.stats()["stale_entries"] == 1
        assert engine._scheduler.pending_polls() == 0
        engine.sim.run()
        assert engine.fired == []  # the wake is a no-op
        assert engine._scheduler.stats()["stale_entries"] == 0

    def test_wake_pulled_earlier_by_nearer_poll(self):
        engine = StubEngine("heap")
        late, early = engine.add_runtime(1), engine.add_runtime(2)
        engine._scheduler.schedule(late, 30.0)
        engine._scheduler.schedule(early, 1.0)
        engine.sim.run_until(2.0)
        assert engine.fired == [(1.0, 2)]
        engine.sim.run()
        assert engine.fired == [(1.0, 2), (30.0, 1)]

    def test_stats_shape_matches_across_modes(self):
        keys = {"mode", "heap_entries", "live_entries", "stale_entries",
                "compactions", "wakes", "batched_polls"}
        for mode in POLL_DISPATCH_MODES:
            engine = StubEngine(mode)
            assert set(engine._scheduler.stats()) == keys


# -- end-to-end fleet equivalence ----------------------------------------------


def run_fleet(mode: str, n_applets: int, seed: int, publications: int):
    """One instrumented fleet run; returns every dispatch-visible output."""
    config = EngineConfig(
        poll_policy=ProductionPollingPolicy(median=60.0, minimum=20.0),
        initial_poll_jitter=40.0,
        poll_dispatch=mode,
    )
    world = FleetWorld(n_applets, engine_config=config, seed=seed)
    result = world.run_publications(publications=publications, spacing=150.0)
    polls = [
        (rec.time, rec.get("applet_id"))
        for rec in world.trace.query(kind="engine_poll_sent")
    ]
    return {
        "polls": polls,
        "latencies": result.latencies,  # the §4 T2A samples
        "actions": result.actions_executed,
        "snapshot": snapshot_blob(world.metrics),
        "scheduler_mode": world.engine.poll_dispatch_stats()["mode"],
    }


class TestFleetEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n_applets=st.integers(min_value=3, max_value=25),
        publications=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=6, deadline=None)
    def test_same_seed_same_world(self, seed, n_applets, publications):
        heap = run_fleet("heap", n_applets, seed, publications)
        timers = run_fleet("timers", n_applets, seed, publications)
        assert heap["scheduler_mode"] == "heap"
        assert timers["scheduler_mode"] == "timers"
        # identical poll orderings, to the simulation instant
        assert heap["polls"] == timers["polls"]
        # identical T2A samples
        assert heap["latencies"] == timers["latencies"]
        assert heap["actions"] == timers["actions"]
        # byte-identical deterministic snapshot
        assert heap["snapshot"] == timers["snapshot"]

    def test_larger_fleet_pinned_case(self):
        heap = run_fleet("heap", 120, seed=2017, publications=2)
        timers = run_fleet("timers", 120, seed=2017, publications=2)
        assert heap["polls"] == timers["polls"]
        assert len(heap["polls"]) > 200
        assert heap["snapshot"] == timers["snapshot"]

    def test_dispatch_sensitive_metrics_are_the_only_kernel_delta(self):
        # the full (unfiltered) snapshots may differ ONLY on the
        # documented kernel counters + wall-clock gauges
        from repro.obs.metrics import WALLCLOCK_METRICS

        results = {}
        for mode in POLL_DISPATCH_MODES:
            config = EngineConfig(
                poll_policy=ProductionPollingPolicy(median=60.0, minimum=20.0),
                initial_poll_jitter=40.0,
                poll_dispatch=mode,
            )
            world = FleetWorld(40, engine_config=config, seed=9)
            world.run_publications(publications=1, spacing=150.0)
            results[mode] = world.metrics.snapshot()
        excluded = WALLCLOCK_METRICS | DISPATCH_SENSITIVE_METRICS
        differing = {
            entry["name"]
            for heap_entry, timer_entry in zip(
                results["heap"]["metrics"], results["timers"]["metrics"]
            )
            for entry in (heap_entry,)
            if heap_entry != timer_entry
        }
        assert differing <= excluded
        # and the kernel counters DO differ (one wake fires many polls),
        # proving the filter earns its keep
        heap_names = {e["name"] for e in results["heap"]["metrics"]}
        assert "sim.events_fired" in heap_names


# -- sharded equivalence --------------------------------------------------------


def run_sharded(mode: str, strategy: str, seed: int = 11):
    """A 3-shard fleet over 5 services with event traffic, both modes."""
    sim = Simulator()
    rng = Rng(seed=seed, name="equiv-shard")
    metrics = MetricsRegistry()
    sim.metrics = metrics
    net = Network(sim, rng.fork("network"), metrics=metrics)
    # Jittered (continuous) poll times: cross-shard simultaneous polls
    # would batch per shard under the heap scheduler and interleave
    # globally under timers, which is an equally valid order but changes
    # what shared order-sensitive sketches (net.* quantiles) observe.
    # Continuous times make exact cross-shard ties measure-zero, so the
    # two modes produce the same global order — the property under test.
    config = EngineConfig(
        poll_policy=ProductionPollingPolicy(median=8.0, sigma=0.4, minimum=2.0),
        initial_poll_delay=0.5,
        initial_poll_jitter=3.0,
        num_shards=3,
        shard_strategy=strategy,
        poll_dispatch=mode,
    )
    fleet = ShardedEngine(net, config=config, rng=rng.fork("engine"))
    delivered = []
    services = []
    for i in range(5):
        service = net.add_node(PartnerService(
            Address(f"svc{i}.cloud"), slug=f"svc{i}", service_time=0.0,
        ))
        service.add_trigger(TriggerEndpoint(slug="ping", name="Ping"))
        service.add_action(ActionEndpoint(
            slug="record", name="Record",
            executor=lambda fields, i=i: delivered.append((i, dict(fields))),
        ))
        for shard in fleet.shards:
            net.connect(shard.address, service.address, FixedLatency(0.01))
        fleet.publish_service(service)
        authority = OAuthAuthority(service.slug)
        authority.register_user("alice", "pw")
        fleet.connect_service("alice", service, authority, "pw")
        services.append(service)
    for i in range(5):
        fleet.install_applet(
            user="alice", name=f"a{i}",
            trigger=TriggerRef(f"svc{i}", "ping"),
            action=ActionRef(f"svc{i}", "record", {"n": "{{n}}"}),
        )
    for i in range(8):
        sim.schedule(2.0 + i, services[i % 5].ingest_event, "ping", {"n": i})
    sim.run_until(40.0)
    conservation = [
        shard.actions_dispatched
        == shard.actions_delivered + shard.actions_in_retry
        + len(shard.dead_letters) + shard.actions_in_replay
        for shard in fleet.shards
    ]
    return {
        "delivered": delivered,
        "snapshot": snapshot_blob(metrics),
        "modes": [shard.poll_dispatch_stats()["mode"] for shard in fleet.shards],
        "conservation": conservation,
    }


class TestShardedEquivalence:
    @pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
    def test_modes_agree_under_every_strategy(self, strategy):
        heap = run_sharded("heap", strategy)
        timers = run_sharded("timers", strategy)
        assert heap["modes"] == ["heap"] * 3
        assert timers["modes"] == ["timers"] * 3
        assert heap["delivered"] == timers["delivered"]
        assert len(heap["delivered"]) == 8
        # merged-snapshot algebra preserved: identical shard-scoped and
        # merged engine.* series, byte for byte
        assert heap["snapshot"] == timers["snapshot"]
        assert all(heap["conservation"]) and all(timers["conservation"])


# -- sample_interval handle-cache regression (satellite) ------------------------


def histogram_counts(metrics) -> dict:
    """Map histogram name -> observation count from a registry snapshot."""
    return {
        entry["name"]: entry["count"]
        for entry in metrics.snapshot()["metrics"]
        if entry["type"] == "histogram"
    }


class TestSampleIntervalCache:
    def test_handle_cached_per_policy(self):
        policy = FixedPollingPolicy(5.0)
        metrics = MetricsRegistry()
        rng = Rng(1)
        policy.sample_interval(rng, metrics)
        first = policy._bound_hist
        policy.sample_interval(rng, metrics)
        assert policy._bound_hist is first
        (count,) = histogram_counts(metrics).values()
        assert count == 2

    def test_rebinds_on_new_registry(self):
        policy = FixedPollingPolicy(5.0)
        rng = Rng(1)
        first_registry, second_registry = MetricsRegistry(), MetricsRegistry()
        policy.sample_interval(rng, first_registry)
        policy.sample_interval(rng, second_registry)
        policy.sample_interval(rng, second_registry)
        assert sum(histogram_counts(first_registry).values()) == 1
        assert sum(histogram_counts(second_registry).values()) == 2

    def test_rebinds_on_shard_namespaced_metric_name(self):
        # a cloned policy observed under engine.shard<i>.* must not keep
        # writing into the prototype's engine.* histogram
        prototype = FixedPollingPolicy(5.0)
        metrics = MetricsRegistry()
        rng = Rng(1)
        prototype.sample_interval(
            rng, metrics, metric_name="engine.poll_interval_seconds"
        )
        clone = prototype.clone()
        clone.sample_interval(
            rng, metrics, metric_name="engine.shard0.poll_interval_seconds"
        )
        clone.sample_interval(
            rng, metrics, metric_name="engine.shard0.poll_interval_seconds"
        )
        by_name = histogram_counts(metrics)
        assert by_name["engine.poll_interval_seconds"] == 1
        assert by_name["engine.shard0.poll_interval_seconds"] == 2

    def test_rebinds_on_label_change(self):
        policy = FixedPollingPolicy(5.0)
        metrics = MetricsRegistry()
        rng = Rng(1)
        policy.sample_interval(rng, metrics, shard="0")
        bound_for_shard0 = policy._bound_hist
        policy.sample_interval(rng, metrics, shard="1")
        assert policy._bound_hist is not bound_for_shard0

    def test_sharded_fleet_namespaces_isolated(self):
        # end-to-end: per-shard poll_interval histograms receive exactly
        # that shard's polls (no cross-shard handle leakage)
        sim = Simulator()
        rng = Rng(seed=4, name="ns")
        metrics = MetricsRegistry()
        net = Network(sim, rng.fork("network"), metrics=metrics)
        config = EngineConfig(
            poll_policy=FixedPollingPolicy(5.0),
            initial_poll_delay=0.5,
            num_shards=2,
            shard_strategy="round_robin",
        )
        fleet = ShardedEngine(net, config=config, rng=rng.fork("engine"))
        service = net.add_node(PartnerService(
            Address("svc.cloud"), slug="svc", service_time=0.0,
        ))
        service.add_trigger(TriggerEndpoint(slug="ping", name="Ping"))
        service.add_action(ActionEndpoint(
            slug="record", name="Record", executor=lambda fields: None,
        ))
        for shard in fleet.shards:
            net.connect(shard.address, service.address, FixedLatency(0.01))
        fleet.publish_service(service)
        authority = OAuthAuthority("svc")
        authority.register_user("alice", "pw")
        fleet.connect_service("alice", service, authority, "pw")
        for i in range(4):
            fleet.install_applet(
                user="alice", name=f"a{i}",
                trigger=TriggerRef("svc", "ping"),
                action=ActionRef("svc", "record", {"n": "{{n}}"}),
            )
        sim.run_until(30.0)
        by_name = histogram_counts(metrics)
        per_shard = {
            index: sum(
                count
                for name, count in by_name.items()
                if name == f"engine.shard{index}.poll_interval_seconds"
            )
            for index in (0, 1)
        }
        polls = {
            index: shard.polls_sent for index, shard in enumerate(fleet.shards)
        }
        assert per_shard == polls
        assert all(count > 0 for count in per_shard.values())
