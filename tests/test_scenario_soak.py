"""Soak test: a realistic household day against a loaded engine.

Ten applets, a full simulated day of diurnal device/webapp activity, and
a pile of global invariants — the closest thing to running the platform
"in production" that a deterministic simulation can offer.
"""

import pytest

from repro.engine import ActionRef, TriggerRef
from repro.testbed import Testbed, TestbedConfig, TestController
from repro.testbed.scenario_gen import DAY, HOUR, DailyScenario, diurnal_rate
from repro.testbed.testbed import TEST_USER


class TestDiurnalRate:
    def test_evening_peak_beats_night(self):
        night = diurnal_rate(3 * HOUR, base_per_hour=2.0)
        evening = diurnal_rate(19.5 * HOUR, base_per_hour=2.0)
        assert evening > 3 * night

    def test_rate_periodic_over_days(self):
        assert diurnal_rate(10 * HOUR, 2.0) == pytest.approx(
            diurnal_rate(10 * HOUR + DAY, 2.0)
        )

    def test_rate_positive_everywhere(self):
        assert all(diurnal_rate(h * HOUR, 1.0) > 0 for h in range(24))


@pytest.fixture(scope="module")
def soaked():
    """A testbed after one simulated day of scenario-driven activity."""
    testbed = Testbed(TestbedConfig(seed=123)).build()
    controller = TestController(testbed)
    engine = testbed.engine
    for key in ("A1", "A2", "A3", "A4", "A5", "A6", "A7"):
        controller.install(key)
    engine.install_applet(
        user=TEST_USER, name="rain -> blue light",
        trigger=TriggerRef("weather", "rain_starts"),
        action=ActionRef("philips_hue", "change_color", {"lamp_id": "lamp1", "color": "blue"}),
    )
    engine.install_applet(
        user=TEST_USER, name="boss email -> notify sheet",
        trigger=TriggerRef("gmail", "new_email"),
        action=ActionRef("google_sheets", "add_row", {"sheet": "mail_log", "row": "{{from}}: {{subject}}"}),
        filter_code="trigger.from contains 'boss'",
    )
    engine.install_applet(
        user=TEST_USER, name="hot -> cool down",
        trigger=TriggerRef("nest_thermostat", "temperature_rises_above", {"threshold_c": 23.5}),
        action=ActionRef("nest_thermostat", "set_temperature", {"device_id": "nest1", "target_c": 20.5}),
    )
    scenario = DailyScenario(testbed, seed=9).start()
    testbed.run_for(DAY)
    scenario.stop()
    return testbed, scenario, engine


class TestSoak:
    def test_scenario_produced_activity(self, soaked):
        _, scenario, _ = soaked
        stats = scenario.stats
        assert stats.switch_presses > 5
        assert stats.voice_commands > 10
        assert stats.emails > 20
        assert stats.temperature_updates > 80

    def test_engine_executed_many_actions(self, soaked):
        _, _, engine = soaked
        assert engine.actions_dispatched > 50
        assert engine.polls_sent > 1000

    def test_counter_coherence(self, soaked):
        testbed, _, engine = soaked
        sent = len(testbed.trace.query(kind="engine_action_sent"))
        assert sent == engine.actions_dispatched
        polls = len(testbed.trace.query(kind="engine_poll_sent"))
        assert polls == engine.polls_sent
        # every poll response corresponds to a poll (minus in-flight at cutoff)
        responses = len(testbed.trace.query(kind="engine_poll_response"))
        assert 0 <= polls - responses <= len(engine.applets)

    def test_filter_gated_the_mail_log(self, soaked):
        testbed, scenario, engine = soaked
        rows = testbed.sheets.rows("mail_log")
        assert engine.filter_skips > 0
        assert all(cells[0].startswith("boss@corp") for cells in rows)
        # some boss emails must have arrived over a whole day
        assert rows

    def test_thermostat_feedback_applet_regulates(self, soaked):
        testbed, _, _ = soaked
        # the cool-down applet must have fired at least once on a warm
        # afternoon and pushed the target down
        set_points = [
            rec for rec in testbed.trace.query(kind="device_state_changed", source="nest1")
            if rec.get("key") == "target_c" and rec.get("value") == 20.5
        ]
        assert set_points

    def test_no_action_failures(self, soaked):
        _, _, engine = soaked
        assert engine.action_failures == 0
        assert engine.poll_failures == 0

    def test_alexa_usage_fast_all_day(self, soaked):
        testbed, _, _ = soaked
        # every honoured realtime hint led to a prompt poll; spot-check
        # that hints were flowing all day
        hints = testbed.trace.query(kind="engine_realtime_hint", honoured=True)
        assert len(hints) > 10
        spread = hints[-1].time - hints[0].time
        assert spread > 12 * HOUR


def _scenario_run(duration: float, trace_max_records=None) -> Testbed:
    """A fixed-seed scenario run, optionally with a bounded trace."""
    testbed = Testbed(
        TestbedConfig(seed=123, trace_max_records=trace_max_records)
    ).build()
    controller = TestController(testbed)
    for key in ("A1", "A2", "A3"):
        controller.install(key)
    scenario = DailyScenario(testbed, seed=9).start()
    testbed.run_for(duration)
    scenario.stop()
    return testbed


class TestBoundedTrace:
    """Regression: soak runs must be able to cap trace memory without
    perturbing the §4 statistics computed over the retained window."""

    DURATION = 6 * HOUR
    CAP = 400

    @pytest.fixture(scope="class")
    def runs(self):
        unbounded = _scenario_run(self.DURATION)
        bounded = _scenario_run(self.DURATION, trace_max_records=self.CAP)
        assert len(unbounded.trace) > self.CAP  # the cap must actually bite
        return unbounded, bounded

    def test_cap_validation(self):
        from repro.simcore.trace import Trace

        with pytest.raises(ValueError):
            Trace(max_records=0)

    @staticmethod
    def _key(rec):
        # Event ids come from a process-global counter (services.buffer),
        # so they differ between two in-process runs; everything else in
        # the record must match exactly.
        detail = {k: v for k, v in rec.detail.items() if k not in ("event_id", "id")}
        return (rec.time, rec.source, rec.kind, detail)

    def test_bounded_trace_is_exact_suffix_of_unbounded(self, runs):
        unbounded, bounded = runs
        assert len(bounded.trace) == self.CAP
        tail = list(unbounded.trace)[-self.CAP:]
        assert [self._key(r) for r in bounded.trace] == [self._key(r) for r in tail]

    def test_eviction_accounting(self, runs):
        unbounded, bounded = runs
        assert bounded.trace.total_recorded == unbounded.trace.total_recorded
        assert bounded.trace.dropped == bounded.trace.total_recorded - self.CAP
        assert unbounded.trace.dropped == 0

    def test_windowed_latency_stats_preserved(self, runs):
        # §4 poll statistics over the retained window must match what the
        # unbounded trace reports for the same window.
        from repro.obs import bridge_trace

        unbounded, bounded = runs
        window_start = bounded.trace[0].time
        full = bridge_trace(unbounded.trace)
        windowed = bridge_trace(bounded.trace)
        # Poll counts over the window agree exactly.
        assert windowed.value(
            "trace.records", kind="engine_poll_sent", source="engine"
        ) == len(unbounded.trace.query(kind="engine_poll_sent", since=window_start))
        # And the RTT landmarks from the window are drawn from the same
        # population as the full run's (identical simulated machinery).
        full_rtt = full.get("trace.poll_rtt_seconds")
        window_rtt = windowed.get("trace.poll_rtt_seconds")
        assert window_rtt.count > 0
        assert full_rtt.min <= window_rtt.min
        assert window_rtt.max <= full_rtt.max
