"""Tests for the shared WebApp activity-log machinery."""

import pytest

from repro.net import Address, FixedLatency, HttpNode, Network
from repro.simcore import Rng, Simulator
from repro.webapps.base import WebApp


@pytest.fixture
def app_world():
    sim = Simulator()
    net = Network(sim, Rng(67))
    app = net.add_node(WebApp(Address("app.cloud"), service_time=0.0))
    client = net.add_node(HttpNode(Address("client.cloud")))
    net.connect(client.address, app.address, FixedLatency(0.01))
    return sim, app, client


class TestActivityLog:
    def test_ids_monotone(self, app_world):
        _, app, _ = app_world
        first = app.log_activity("thing", n=1)
        second = app.log_activity("thing", n=2)
        assert second["id"] == first["id"] + 1
        assert app.activity_count == 2

    def test_since_cursor(self, app_world):
        _, app, _ = app_world
        first = app.log_activity("a")
        app.log_activity("b")
        newer = app.activity_since(first["id"])
        assert [rec["activity"] for rec in newer] == ["b"]

    def test_activity_filter(self, app_world):
        _, app, _ = app_world
        app.log_activity("a")
        app.log_activity("b")
        app.log_activity("a")
        assert len(app.activity_since(0, activity="a")) == 2

    def test_limit(self, app_world):
        _, app, _ = app_world
        for i in range(10):
            app.log_activity("tick", n=i)
        assert len(app.activity_since(0, limit=4)) == 4

    def test_http_activity_endpoint(self, app_world):
        sim, app, client = app_world
        app.log_activity("x", payload=1)
        app.log_activity("y", payload=2)
        got = []
        client.get(app.address, "/api/activity", body={"since_id": 1}, on_response=got.append)
        sim.run()
        records = got[0].body["activity"]
        assert [rec["activity"] for rec in records] == ["y"]

    def test_http_activity_filter_param(self, app_world):
        sim, app, client = app_world
        app.log_activity("x")
        app.log_activity("y")
        got = []
        client.get(app.address, "/api/activity",
                   body={"since_id": 0, "activity": "x"}, on_response=got.append)
        sim.run()
        assert len(got[0].body["activity"]) == 1
