"""Tests for static and runtime loop detection, and local execution."""

import pytest

from repro.engine import (
    ActionRef,
    Applet,
    HybridScheduler,
    RuntimeLoopDetector,
    StaticLoopAnalyzer,
    TriggerRef,
)
from repro.net import Address
from repro.services import ActionEndpoint, PartnerService, TriggerEndpoint
from repro.services.endpoints import field_channel, static_channels


def make_services():
    """Two services whose channels can close a loop."""
    gmail = PartnerService(Address("gmail.cloud"), slug="gmail")
    gmail.add_trigger(TriggerEndpoint(
        slug="new_email", name="New email",
        reads_channels=static_channels(("inbox", "me")),
    ))
    gmail.add_action(ActionEndpoint(
        slug="send_email", name="Send email",
        writes_channels=static_channels(("inbox", "me")),
    ))
    sheets = PartnerService(Address("sheets.cloud"), slug="sheets")
    sheets.add_trigger(TriggerEndpoint(
        slug="new_row", name="New row",
        reads_channels=field_channel("sheet", "sheet"),
    ))
    sheets.add_action(ActionEndpoint(
        slug="add_row", name="Add row",
        writes_channels=field_channel("sheet", "sheet"),
    ))
    return {"gmail": gmail, "sheets": sheets}


def applet(applet_id, trigger, action, tf=None, af=None):
    return Applet(
        applet_id=applet_id, name=f"a{applet_id}", user="alice",
        trigger=TriggerRef(trigger[0], trigger[1], tf or {}),
        action=ActionRef(action[0], action[1], af or {}),
    )


class TestStaticLoopAnalyzer:
    def test_two_applet_cycle_found(self):
        analyzer = StaticLoopAnalyzer(make_services())
        forward = applet(1, ("gmail", "new_email"), ("sheets", "add_row"), af={"sheet": "log"})
        reverse = applet(2, ("sheets", "new_row"), ("gmail", "send_email"), tf={"sheet": "log"})
        findings = analyzer.find_cycles([forward, reverse])
        assert len(findings) == 1
        assert {a.applet_id for a in findings[0].applets} == {1, 2}
        assert "->" in findings[0].describe()

    def test_field_mismatch_breaks_cycle(self):
        analyzer = StaticLoopAnalyzer(make_services())
        forward = applet(1, ("gmail", "new_email"), ("sheets", "add_row"), af={"sheet": "log"})
        reverse = applet(2, ("sheets", "new_row"), ("gmail", "send_email"), tf={"sheet": "other"})
        assert analyzer.find_cycles([forward, reverse]) == []

    def test_self_loop_found(self):
        analyzer = StaticLoopAnalyzer(make_services())
        narcissist = applet(1, ("gmail", "new_email"), ("gmail", "send_email"))
        findings = analyzer.find_cycles([narcissist])
        assert len(findings) == 1
        assert len(findings[0].applets) == 1

    def test_three_applet_cycle(self):
        services = make_services()
        phone = PartnerService(Address("phone.cloud"), slug="phone")
        phone.add_trigger(TriggerEndpoint(
            slug="notified", name="Notified",
            reads_channels=static_channels(("phone", "me")),
        ))
        phone.add_action(ActionEndpoint(
            slug="notify", name="Notify",
            writes_channels=static_channels(("phone", "me")),
        ))
        services["phone"] = phone
        analyzer = StaticLoopAnalyzer(services)
        chain = [
            applet(1, ("gmail", "new_email"), ("sheets", "add_row"), af={"sheet": "s"}),
            applet(2, ("sheets", "new_row"), ("phone", "notify"), tf={"sheet": "s"}),
            applet(3, ("phone", "notified"), ("gmail", "send_email")),
        ]
        findings = analyzer.find_cycles(chain)
        assert len(findings) == 1
        assert len(findings[0].applets) == 3

    def test_implicit_loop_needs_external_knowledge(self):
        """The paper's Sheets-notification loop: invisible without the edge."""
        analyzer = StaticLoopAnalyzer(make_services())
        only = applet(1, ("gmail", "new_email"), ("sheets", "add_row"), af={"sheet": "log"})
        assert analyzer.find_cycles([only]) == []
        analyzer.add_external_edge(("sheet", "log"), ("inbox", "me"))
        findings = analyzer.find_cycles([only])
        assert len(findings) == 1

    def test_external_edges_propagate_transitively(self):
        analyzer = StaticLoopAnalyzer(make_services())
        analyzer.add_external_edge(("sheet", "log"), ("middle", "x"))
        analyzer.add_external_edge(("middle", "x"), ("inbox", "me"))
        only = applet(1, ("gmail", "new_email"), ("sheets", "add_row"), af={"sheet": "log"})
        assert len(analyzer.find_cycles([only])) == 1

    def test_cycle_introduced_by(self):
        analyzer = StaticLoopAnalyzer(make_services())
        forward = applet(1, ("gmail", "new_email"), ("sheets", "add_row"), af={"sheet": "log"})
        reverse = applet(2, ("sheets", "new_row"), ("gmail", "send_email"), tf={"sheet": "log"})
        assert analyzer.cycle_introduced_by([forward], reverse) is not None
        harmless = applet(3, ("sheets", "new_row"), ("sheets", "add_row"),
                          tf={"sheet": "a"}, af={"sheet": "b"})
        assert analyzer.cycle_introduced_by([forward], harmless) is None

    def test_unknown_service_yields_no_channels(self):
        analyzer = StaticLoopAnalyzer({})
        orphan = applet(1, ("ghost", "t"), ("ghost", "a"))
        assert analyzer.find_cycles([orphan]) == []


class TestRuntimeLoopDetector:
    def test_trips_over_threshold(self):
        detector = RuntimeLoopDetector(threshold=3, window=60.0)
        assert not any(detector.observe(1, t) for t in (0, 10, 20))
        assert detector.observe(1, 30)
        assert 1 in detector.flagged

    def test_window_slides(self):
        detector = RuntimeLoopDetector(threshold=3, window=60.0)
        for t in (0, 10, 20):
            detector.observe(1, t)
        # 100s later the window is empty again
        assert not detector.observe(1, 100)
        assert detector.rate(1) == 1

    def test_applets_tracked_independently(self):
        detector = RuntimeLoopDetector(threshold=2, window=60.0)
        detector.observe(1, 0)
        detector.observe(2, 0)
        detector.observe(1, 1)
        assert not detector.observe(2, 1)
        assert detector.observe(1, 2)
        assert detector.flagged == {1}

    def test_reset(self):
        detector = RuntimeLoopDetector(threshold=1, window=60.0)
        detector.observe(1, 0)
        detector.observe(1, 1)
        assert 1 in detector.flagged
        detector.reset(1)
        assert detector.flagged == set()
        assert detector.rate(1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeLoopDetector(threshold=0)
        with pytest.raises(ValueError):
            RuntimeLoopDetector(window=0)


class TestHybridScheduler:
    def _applets(self):
        local = applet(1, ("wemo", "switch_activated"), ("philips_hue", "turn_on_lights"))
        mixed = applet(2, ("wemo", "switch_activated"), ("google_sheets", "add_row"))
        cloud = applet(3, ("gmail", "new_email"), ("google_sheets", "add_row"))
        return local, mixed, cloud

    def test_placement_rules(self):
        local, mixed, cloud = self._applets()
        scheduler = HybridScheduler({
            ("wemo", "switch_activated"), ("philips_hue", "turn_on_lights"),
        })
        assert scheduler.placement(local) == "local"
        assert scheduler.placement(mixed) == "cloud"
        assert scheduler.placement(cloud) == "cloud"

    def test_plan_and_fraction(self):
        local, mixed, cloud = self._applets()
        scheduler = HybridScheduler({
            ("wemo", "switch_activated"), ("philips_hue", "turn_on_lights"),
        })
        plan = scheduler.plan([local, mixed, cloud])
        assert plan[1] == "local"
        assert scheduler.local_fraction([local, mixed, cloud]) == pytest.approx(1 / 3)

    def test_failover(self):
        local, _, _ = self._applets()
        scheduler = HybridScheduler({
            ("wemo", "switch_activated"), ("philips_hue", "turn_on_lights"),
        })
        scheduler.mark_local_engine_down()
        assert scheduler.placement(local) == "cloud"
        scheduler.mark_local_engine_up()
        assert scheduler.placement(local) == "local"

    def test_empty_applets_fraction(self):
        scheduler = HybridScheduler(set())
        assert scheduler.local_fraction([]) == 0.0
