"""Acceptance tests for the chaos scenarios (ISSUE: fault injection)."""

import pytest

from repro.faults import FaultPlan, service_outage
from repro.obs.metrics import snapshot_to_json_lines
from repro.testbed.chaos import (
    CHAOS_SCENARIOS,
    SINK_SLUG,
    ChaosWorld,
    chaos_scenario,
    run_chaos_scenario,
)

# The shared `outage_result` run lives in tests/conftest.py so the
# sharded chaos suite can reuse it as its unsharded reference.


class TestOutageScenario:
    def test_no_action_silently_lost(self, outage_result):
        r = outage_result
        assert r.actions_dispatched > 0
        assert r.actions_silently_lost == 0
        assert r.actions_in_retry == 0
        assert r.actions_dispatched == r.actions_delivered + r.actions_dead_lettered

    def test_outage_produces_dead_letters_and_retries(self, outage_result):
        r = outage_result
        assert r.actions_dead_lettered > 0
        assert r.engine_stats["action_retries"] > 0
        assert r.engine_stats["actions_shed"] > 0

    def test_every_event_observed(self, outage_result):
        # The sensor stays healthy; nothing is lost on the trigger side.
        r = outage_result
        assert r.events_injected > 0
        assert r.events_observed == r.events_injected

    def test_breaker_transitions_recorded(self, outage_result):
        r = outage_result
        arcs = [(old, new) for _, _, old, new in r.breaker_transitions]
        assert ("closed", "open") in arcs
        assert arcs[-1] == ("half_open", "closed")      # healed by the end

    def test_breaker_transitions_visible_in_metrics(self, outage_result):
        entries = outage_result.snapshot["metrics"]
        transitions = [e for e in entries
                       if e["name"] == "engine.breaker_transitions"]
        assert transitions, "no engine.breaker_transitions in the snapshot"
        assert any(e["labels"].get("to_state") == "open" for e in transitions)
        assert any(e["labels"].get("to_state") == "closed" for e in transitions)

    def test_t2a_recovers_after_heal(self, outage_result):
        r = outage_result
        assert r.t2a_by_phase.get("before"), "no baseline deliveries"
        assert r.t2a_by_phase.get("after"), "no deliveries after the heal"
        # Post-heal latency returns to the polling-bound baseline.  Events
        # injected *during* the 60 s outage exhaust the 4-attempt retry
        # budget long before the heal and are all accounted as dead
        # letters — none deliver, and none vanish.
        assert r.t2a_max("after") <= r.t2a_max("before") + 5.0
        during = len(r.t2a_by_phase.get("during", []))
        in_window = sum(
            1 for at in CHAOS_SCENARIOS["outage"].event_times if 60.0 <= at < 120.0
        )
        # Every in-window event is accounted (delivered or dead-lettered);
        # at most a couple of straddlers from just before/after join them.
        assert in_window - 2 <= during + r.actions_dead_lettered <= in_window + 2

    def test_fault_windows_opened_and_closed(self, outage_result):
        assert outage_result.faults_activated == 1
        assert outage_result.faults_deactivated == 1


class TestOtherScenarios:
    def test_partition_conserves_and_catches_up(self):
        r = run_chaos_scenario("partition", seed=7)
        assert r.actions_silently_lost == 0
        assert r.events_observed == r.events_injected
        # Polls during the partition fail fast as refusals, not timeouts.
        refused = [e for e in r.snapshot["metrics"]
                   if e["name"] == "net.connection_refused"]
        assert refused and sum(e["value"] for e in refused) > 0
        assert r.engine_stats["poll_failures"] > 0
        # Buffered events drain after the heal.
        assert r.actions_delivered == r.events_injected

    def test_flappy_soak_conserves(self):
        r = run_chaos_scenario("flappy", seed=7)
        assert r.actions_silently_lost == 0
        assert r.actions_delivered + r.actions_dead_lettered == r.actions_dispatched
        assert r.faults_activated == 1         # one flap window...
        assert r.engine_stats["poll_retries"] > 0   # ...many down half-periods

    def test_custom_plan_overrides_scenario(self):
        plan = FaultPlan((service_outage(SINK_SLUG, at=20.0, duration=10.0),))
        r = run_chaos_scenario("outage", seed=7, plan=plan)
        assert r.faults_activated == 1
        assert r.actions_silently_lost == 0


class TestDeterminism:
    def test_same_seed_same_snapshot_bytes(self):
        a = run_chaos_scenario("outage", seed=13)
        b = run_chaos_scenario("outage", seed=13)
        assert snapshot_to_json_lines(a.snapshot) == snapshot_to_json_lines(b.snapshot)
        assert a.t2a_by_phase == b.t2a_by_phase
        assert a.breaker_transitions == b.breaker_transitions

    def test_different_seed_differs(self):
        a = run_chaos_scenario("outage", seed=13)
        b = run_chaos_scenario("outage", seed=14)
        assert snapshot_to_json_lines(a.snapshot) != snapshot_to_json_lines(b.snapshot)

    def test_wallclock_gauges_filtered_from_snapshot(self, outage_result):
        names = {e["name"] for e in outage_result.snapshot["metrics"]}
        assert "sim.events_per_wallsec" not in names


class TestScenarioRegistry:
    def test_builtin_scenarios_well_formed(self):
        assert set(CHAOS_SCENARIOS) == {"outage", "partition", "flappy", "brownout"}
        for scenario in CHAOS_SCENARIOS.values():
            assert scenario.event_times
            assert scenario.plan.specs
            assert scenario.horizon > 0

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            chaos_scenario("nope")

    def test_summary_mentions_the_invariant_numbers(self, outage_result):
        text = outage_result.summary()
        assert "silently-lost=0" in text
        assert "dead-lettered=" in text
        assert "breaker" in text

    def test_world_not_collected_by_pytest(self):
        assert ChaosWorld.__test__ is False
