"""Property-based routing tests, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Address, FixedLatency, Network, Node, RoutingError
from repro.simcore import Rng, Simulator


def build_random_network(n_nodes, edges):
    """A Network plus the equivalent networkx graph."""
    sim = Simulator()
    net = Network(sim, Rng(1))
    nodes = [net.add_node(Node(Address(f"n{i}.test"))) for i in range(n_nodes)]
    graph = nx.Graph()
    graph.add_nodes_from(range(n_nodes))
    for a, b in edges:
        if a != b and net.link_between(nodes[a].address, nodes[b].address) is None:
            net.connect(nodes[a].address, nodes[b].address, FixedLatency(0.01))
            graph.add_edge(a, b)
    return net, nodes, graph


edge_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=9)),
    min_size=0, max_size=25,
)


@settings(max_examples=60, deadline=None)
@given(edges=edge_lists,
       src=st.integers(min_value=0, max_value=9),
       dst=st.integers(min_value=0, max_value=9))
def test_route_length_matches_networkx_shortest_path(edges, src, dst):
    net, nodes, graph = build_random_network(10, edges)
    try:
        expected = nx.shortest_path_length(graph, src, dst)
        path = net.route(nodes[src].address, nodes[dst].address)
        assert len(path) == expected
    except nx.NetworkXNoPath:
        with pytest.raises(RoutingError):
            net.route(nodes[src].address, nodes[dst].address)


@settings(max_examples=40, deadline=None)
@given(edges=edge_lists,
       src=st.integers(min_value=0, max_value=9),
       dst=st.integers(min_value=0, max_value=9))
def test_route_is_a_valid_contiguous_path(edges, src, dst):
    net, nodes, graph = build_random_network(10, edges)
    if not nx.has_path(graph, src, dst):
        return
    path = net.route(nodes[src].address, nodes[dst].address)
    cursor = nodes[src].address
    for link in path:
        cursor = link.other(cursor)  # raises if the link doesn't touch cursor
    assert cursor == nodes[dst].address


@settings(max_examples=40, deadline=None)
@given(edges=edge_lists, src=st.integers(min_value=0, max_value=9),
       dst=st.integers(min_value=0, max_value=9))
def test_route_symmetric_length(edges, src, dst):
    net, nodes, graph = build_random_network(10, edges)
    if not nx.has_path(graph, src, dst):
        return
    forward = net.route(nodes[src].address, nodes[dst].address)
    backward = net.route(nodes[dst].address, nodes[src].address)
    assert len(forward) == len(backward)


@settings(max_examples=25, deadline=None)
@given(edges=edge_lists)
def test_route_cache_consistent_after_link_flap(edges):
    """Taking a link down and up again restores the original route length."""
    net, nodes, graph = build_random_network(10, edges)
    if not nx.has_path(graph, 0, 9):
        return
    before = len(net.route(nodes[0].address, nodes[9].address))
    links = net.links
    if not links:
        return
    target = links[0]
    net.set_link_state(target.a, target.b, up=False)
    try:
        net.route(nodes[0].address, nodes[9].address)
    except RoutingError:
        pass
    net.set_link_state(target.a, target.b, up=True)
    after = len(net.route(nodes[0].address, nodes[9].address))
    assert after == before
