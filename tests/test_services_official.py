"""Direct tests for the official vendor services (trigger ingestion and
action execution against real device/web-app nodes)."""

import pytest

from repro.iot import AlexaCloud, EchoDevice, GenericDevice, HueHub, HueLamp, NestThermostat, SmartThingsHub, WemoSwitch
from repro.net import Address, FixedLatency, Network
from repro.services import (
    OfficialAlexaService,
    OfficialDriveService,
    OfficialGmailService,
    OfficialHueService,
    OfficialNestService,
    OfficialSheetsService,
    OfficialSmartThingsService,
    OfficialWeatherService,
    OfficialWemoService,
)
from repro.simcore import Rng, Simulator
from repro.webapps import Gmail, GoogleDrive, GoogleSheets, WeatherService


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, Rng(41))
    return sim, net


def link(net, a, b):
    net.connect(a.address, b.address, FixedLatency(0.01))


class TestOfficialHue:
    @pytest.fixture
    def hue(self, world):
        sim, net = world
        lamp = net.add_node(HueLamp(Address("lamp.home"), "lamp1"))
        hub = net.add_node(HueHub(Address("hub.home")))
        service = net.add_node(OfficialHueService(Address("hue.cloud"), hub=hub.address))
        link(net, lamp, hub)
        link(net, hub, service)
        hub.pair_lamp(lamp)
        service.connect()
        sim.run()
        return sim, lamp, hub, service

    def test_turn_on_action(self, hue):
        sim, lamp, _, service = hue
        service.action("turn_on_lights").executor({"lamp_id": "lamp1"})
        sim.run()
        assert lamp.get_state("on") is True

    def test_change_color_action(self, hue):
        sim, lamp, _, service = hue
        service.action("change_color").executor({"lamp_id": "lamp1", "color": "blue"})
        sim.run()
        assert lamp.get_state("color") == "blue"
        assert lamp.get_state("on") is True

    def test_color_loop_action(self, hue):
        sim, lamp, _, service = hue
        service.action("turn_on_color_loop").executor({"lamp_id": "lamp1"})
        sim.run()
        assert lamp.get_state("effect") == "colorloop"

    def test_missing_lamp_id_rejected(self, hue):
        _, _, _, service = hue
        with pytest.raises(ValueError):
            service.action("turn_on_lights").executor({})

    def test_hub_event_feeds_triggers(self, hue):
        sim, lamp, hub, service = hue
        service.register_identity("light_turned_on", "id-on", {"lamp_id": "lamp1"})
        service.register_identity("light_turned_off", "id-off", {})
        hub.command_lamp("lamp1", {"on": True})
        sim.run()
        assert len(service.buffer_for("id-on")) == 1
        assert len(service.buffer_for("id-off")) == 0

    def test_lamp_filter_respected(self, hue):
        sim, lamp, hub, service = hue
        service.register_identity("light_turned_on", "id-other", {"lamp_id": "lamp9"})
        hub.command_lamp("lamp1", {"on": True})
        sim.run()
        assert len(service.buffer_for("id-other")) == 0


class TestOfficialWemo:
    @pytest.fixture
    def wemo(self, world):
        sim, net = world
        switch = net.add_node(WemoSwitch(Address("wemo.home"), "wemo1"))
        service = net.add_node(OfficialWemoService(Address("wemo.cloud")))
        link(net, switch, service)
        service.connect_switch("wemo1", switch.address)
        sim.run()
        return sim, switch, service

    def test_activate_action(self, wemo):
        sim, switch, service = wemo
        service.action("activate_switch").executor({"device_id": "wemo1"})
        sim.run()
        assert switch.get_state("on") is True

    def test_unknown_switch_rejected(self, wemo):
        _, _, service = wemo
        with pytest.raises(ValueError):
            service.action("activate_switch").executor({"device_id": "ghost"})

    def test_physical_press_feeds_trigger(self, wemo):
        sim, switch, service = wemo
        service.register_identity("switch_activated", "id-1", {"device_id": "wemo1"})
        switch.press()
        sim.run()
        assert len(service.buffer_for("id-1")) == 1
        switch.press()  # off: not a switch_activated event
        sim.run()
        assert len(service.buffer_for("id-1")) == 1


class TestOfficialAlexa:
    def test_intents_feed_triggers_and_hints(self, world):
        sim, net = world
        cloud = net.add_node(AlexaCloud(Address("alexa.cloud")))
        echo = net.add_node(EchoDevice(Address("echo.home"), "echo1", cloud=cloud.address))
        service = net.add_node(OfficialAlexaService(Address("svc.cloud"), alexa_cloud=cloud.address))
        link(net, echo, cloud)
        link(net, cloud, service)
        service.connect()
        sim.run()
        assert service.realtime  # Alexa is realtime-capable
        service.register_identity("say_phrase", "id-p", {"phrase": "party"})
        service.register_identity("song_played", "id-s", {})
        echo.hear("Alexa, trigger party")
        echo.hear("Alexa, play a song")
        sim.run()
        assert len(service.buffer_for("id-p")) == 1
        assert len(service.buffer_for("id-s")) == 1

    def test_phrase_field_filters(self, world):
        sim, net = world
        cloud = net.add_node(AlexaCloud(Address("alexa.cloud")))
        service = net.add_node(OfficialAlexaService(Address("svc.cloud"), alexa_cloud=cloud.address))
        link(net, cloud, service)
        service.connect()
        sim.run()
        service.register_identity("say_phrase", "id-x", {"phrase": "other"})
        service.ingest_event("say_phrase", {"intent": "say_phrase", "phrase": "party"})
        assert len(service.buffer_for("id-x")) == 0


class TestOfficialGmail:
    @pytest.fixture
    def gm(self, world):
        sim, net = world
        gmail = net.add_node(Gmail(Address("gmail.cloud"), service_time=0.0))
        service = net.add_node(OfficialGmailService(
            Address("svc.cloud"), gmail=gmail.address, user_email="me@g", poll_interval=5.0))
        link(net, gmail, service)
        service.start_polling()
        sim.run_until(1.0)
        return sim, gmail, service

    def test_mailbox_polling_feeds_triggers(self, gm):
        sim, gmail, service = gm
        service.register_identity("new_email", "id-m", {})
        service.register_identity("new_attachment", "id-a", {})
        gmail.deliver_email("me@g", "s@x", "plain mail")
        gmail.deliver_email("me@g", "s@x", "with file", attachments=("f.txt",))
        sim.run_until(12.0)
        assert len(service.buffer_for("id-m")) == 2
        assert len(service.buffer_for("id-a")) == 1
        attachment_event = service.buffer_for("id-a").latest()
        assert attachment_event.ingredients["attachment"] == "f.txt"

    def test_start_polling_idempotent(self, gm):
        sim, _, service = gm
        first = service._poll_process
        assert service.start_polling() is first

    def test_send_email_action(self, gm):
        sim, gmail, service = gm
        service.action("send_email").executor({"to": "you@g", "subject": "hi"})
        sim.run_until(sim.now + 1.0)
        assert gmail.inbox("you@g")[0].subject == "hi"


class TestOfficialSheetsAndDrive:
    def test_add_row_and_new_row_trigger(self, world):
        sim, net = world
        sheets = net.add_node(GoogleSheets(Address("sheets.cloud"), service_time=0.0))
        service = net.add_node(OfficialSheetsService(
            Address("svc.cloud"), sheets=sheets.address, poll_interval=5.0))
        link(net, sheets, service)
        service.start_polling()
        sim.run_until(1.0)
        service.register_identity("new_row", "id-r", {"sheet": "log"})
        service.action("add_row").executor({"sheet": "log", "row": "hello"})
        sim.run_until(12.0)
        assert sheets.rows("log") == [["hello"]]
        assert len(service.buffer_for("id-r")) == 1

    def test_row_count_query(self, world):
        sim, net = world
        sheets = net.add_node(GoogleSheets(Address("sheets.cloud"), service_time=0.0))
        service = net.add_node(OfficialSheetsService(
            Address("svc.cloud"), sheets=sheets.address, poll_interval=5.0))
        link(net, sheets, service)
        service.start_polling()
        sim.run_until(1.0)
        sheets.append_row("log", ["a"])
        sheets.append_row("log", ["b"])
        sim.run_until(12.0)
        rows = service._row_count({"sheet": "log"})
        assert rows == [{"sheet": "log", "rows": 2}]
        assert service._row_count({"sheet": "empty"}) == [{"sheet": "empty", "rows": 0}]

    def test_drive_upload_action(self, world):
        sim, net = world
        drive = net.add_node(GoogleDrive(Address("drive.cloud"), service_time=0.0))
        service = net.add_node(OfficialDriveService(Address("svc.cloud"), drive=drive.address))
        link(net, drive, service)
        service.action("upload_file").executor({"user": "me", "name": "x.pdf"})
        sim.run()
        assert drive.files("me")[0].name == "x.pdf"


class TestOfficialNest:
    @pytest.fixture
    def nest_world(self, world):
        sim, net = world
        service = net.add_node(OfficialNestService(Address("svc.cloud")))
        nest = net.add_node(NestThermostat(Address("nest.home"), "nest1", cloud=service.address))
        link(net, nest, service)
        service.connect_thermostat("nest1", nest.address)
        return sim, nest, service

    def test_set_temperature_action(self, nest_world):
        sim, nest, service = nest_world
        service.action("set_temperature").executor({"device_id": "nest1", "target_c": 25.0})
        sim.run()
        assert nest.get_state("target_c") == 25.0

    def test_unknown_thermostat_rejected(self, nest_world):
        _, _, service = nest_world
        with pytest.raises(ValueError):
            service.action("set_temperature").executor({"device_id": "ghost"})

    def test_temperature_threshold_triggers(self, nest_world):
        sim, nest, service = nest_world
        service.register_identity("temperature_rises_above", "id-hot", {"threshold_c": 26.0})
        service.register_identity("temperature_drops_below", "id-cold", {"threshold_c": 15.0})
        nest.sense_ambient(30.0)
        sim.run()
        assert len(service.buffer_for("id-hot")) == 1
        assert len(service.buffer_for("id-cold")) == 0
        nest.sense_ambient(10.0)
        sim.run()
        assert len(service.buffer_for("id-cold")) == 1


class TestOfficialSmartThings:
    def test_hub_roundtrip(self, world):
        sim, net = world
        hub = net.add_node(SmartThingsHub(Address("hub.home")))
        lock = net.add_node(GenericDevice(Address("lock.home"), "lock1", "lock"))
        service = net.add_node(OfficialSmartThingsService(Address("svc.cloud"), hub=hub.address))
        link(net, lock, hub)
        link(net, hub, service)
        hub.pair_device(lock)
        service.connect()
        sim.run()
        service.register_identity("device_state_changed", "id-d", {"device_id": "lock1"})
        service.action("control_device").executor({"device_id": "lock1", "value": True})
        sim.run()
        assert lock.get_state("locked") is True
        assert len(service.buffer_for("id-d")) == 1


class TestOfficialWeather:
    def test_rain_trigger_and_conditions_query(self, world):
        sim, net = world
        weather = net.add_node(WeatherService(Address("weather.cloud"), service_time=0.0))
        service = net.add_node(OfficialWeatherService(
            Address("svc.cloud"), weather=weather.address, poll_interval=5.0))
        link(net, weather, service)
        service.start_polling()
        sim.run_until(1.0)
        service.register_identity("rain_starts", "id-rain", {})
        service.register_identity("condition_changes", "id-any", {})
        weather.set_conditions("home", "clear")
        sim.run_until(8.0)
        weather.set_conditions("home", "rain")
        sim.run_until(15.0)
        assert len(service.buffer_for("id-rain")) == 1
        assert len(service.buffer_for("id-any")) == 2
        rows = service._current_conditions({"location": "home"})
        assert rows == [{"location": "home", "condition": "rain"}]
