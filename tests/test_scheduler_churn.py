"""Churn regressions for the heap poll scheduler (ISSUE 6 satellite).

Lazy cancellation trades O(1) uninstalls for stale entries that linger in
the scheduler's internal heap.  These tests pin the hygiene obligations
that come with that trade: an uninstall storm (half the fleet removed
mid-run) must trigger compaction rather than pinning the heap at its
pre-storm size, ``_retry_timers`` cancellation on uninstall must keep
working (parked retries dead-letter, not leak), and the action
conservation invariant ``dispatched == delivered + in_retry +
dead_lettered + in_replay`` must survive the storm under both dispatch
modes.
"""

import pytest

from repro.engine import EngineConfig, FixedPollingPolicy, RetryPolicy
from repro.engine.scheduler import COMPACT_MIN_ENTRIES, POLL_DISPATCH_MODES
from repro.net.http import HttpError

from tests.helpers import build_engine_world, install_ping_applet


def storm_world(mode: str, n_applets: int, **config_overrides):
    """A single-engine world with ``n_applets`` fast-polling applets."""
    config = EngineConfig(
        poll_policy=FixedPollingPolicy(2.0),
        initial_poll_delay=0.5,
        poll_dispatch=mode,
        **config_overrides,
    )
    world = build_engine_world(config, with_trace=False)
    applets = [
        install_ping_applet(world.engine, name=f"storm applet {i}")
        for i in range(n_applets)
    ]
    return world, applets


def conservation_holds(engine) -> bool:
    return engine.actions_dispatched == (
        engine.actions_delivered
        + engine.actions_in_retry
        + len(engine.dead_letters)
        + engine.actions_in_replay
    )


class TestUninstallStormCompaction:
    def test_storm_compacts_stale_entries(self):
        # enough applets that the heap crosses the compaction floor
        n = COMPACT_MIN_ENTRIES * 2
        world, applets = storm_world("heap", n)
        world.sim.run_until(5.0)  # everyone polled at least once
        stats = world.engine.poll_dispatch_stats()
        assert stats["live_entries"] == n
        for applet in applets[: n // 2]:  # the storm: 50% removed mid-run
            world.engine.uninstall_applet(applet.applet_id)
        stats = world.engine.poll_dispatch_stats()
        # compaction already ran (cancel-triggered): the heap cannot be
        # pinned at pre-storm size with half the entries stale
        assert stats["compactions"] >= 1
        assert stats["heap_entries"] < n
        assert stats["live_entries"] == n // 2
        assert stats["stale_entries"] * 2 < max(
            stats["heap_entries"], COMPACT_MIN_ENTRIES
        )
        world.sim.run_until(15.0)
        # survivors keep polling; the removed half stay silent
        assert world.engine.stats()["applets"] == n // 2
        assert world.engine.poll_dispatch_stats()["live_entries"] == n // 2

    def test_small_heaps_skip_compaction(self):
        world, applets = storm_world("heap", 10)
        world.sim.run_until(3.0)
        for applet in applets[:5]:
            world.engine.uninstall_applet(applet.applet_id)
        stats = world.engine.poll_dispatch_stats()
        # below COMPACT_MIN_ENTRIES nothing compacts: stale entries are
        # cheap and get consumed by the next wake instead
        assert stats["compactions"] == 0
        world.sim.run_until(6.0)
        assert world.engine.poll_dispatch_stats()["stale_entries"] == 0

    def test_uninstalled_applets_never_poll_again(self):
        for mode in POLL_DISPATCH_MODES:
            world, applets = storm_world(mode, 20)
            world.sim.run_until(3.0)
            victim = applets[3]
            polls_before = world.engine.poll_count(victim.applet_id)
            world.engine.uninstall_applet(victim.applet_id)
            world.sim.run_until(20.0)
            assert victim.applet_id not in [
                rt.applet.applet_id for rt in world.engine._applets.values()
            ]
            assert world.engine.stats()["applets"] == 19, mode
            assert polls_before >= 1

    def test_reinstall_after_storm_polls_fresh(self):
        world, applets = storm_world("heap", 50)
        world.sim.run_until(3.0)
        for applet in applets:
            world.engine.uninstall_applet(applet.applet_id)
        replacement = install_ping_applet(world.engine, name="replacement")
        world.sim.run_until(10.0)
        assert world.engine.poll_count(replacement.applet_id) >= 1
        stats = world.engine.poll_dispatch_stats()
        assert stats["live_entries"] == 1


class TestDisableEnableChurn:
    @pytest.mark.parametrize("mode", POLL_DISPATCH_MODES)
    def test_disable_halts_enable_resumes(self, mode):
        world, applets = storm_world(mode, 8)
        world.sim.run_until(3.0)
        target = applets[0]
        world.engine.disable_applet(target.applet_id)
        halted_at = world.engine.poll_count(target.applet_id)
        world.sim.run_until(9.0)
        assert world.engine.poll_count(target.applet_id) == halted_at
        world.engine.enable_applet(target.applet_id)
        world.sim.run_until(15.0)
        assert world.engine.poll_count(target.applet_id) > halted_at

    def test_rapid_toggle_leaves_one_live_entry(self):
        world, applets = storm_world("heap", 5)
        target = applets[0]
        for _ in range(25):
            world.engine.disable_applet(target.applet_id)
            world.engine.enable_applet(target.applet_id)
        stats = world.engine.poll_dispatch_stats()
        assert stats["live_entries"] == 5
        world.sim.run_until(10.0)
        # the toggled applet polls normally afterwards
        assert world.engine.poll_count(target.applet_id) >= 1
        assert world.engine.poll_dispatch_stats()["stale_entries"] == 0


class TestRetryTimersUnderStorm:
    def retry_world(self, mode: str, n_applets: int = 12):
        # Polls must keep succeeding (events have to be *observed* to
        # dispatch actions), so the fault is injected on the action
        # executor only — not via set_outage, which fails polls too.
        # base_delay=30 keeps failed actions parked in retry long enough
        # to storm them; breaker disabled so nothing gets shed instead.
        world, applets = storm_world(
            mode,
            n_applets,
            retry_policy=RetryPolicy(max_attempts=4, base_delay=30.0, jitter=0.0),
            breaker_policy=None,
        )
        action = world.service._actions["record"]
        original_executor = action.executor

        def exploding(fields):
            raise HttpError(500, "action backend down")

        action.executor = exploding

        def heal():
            action.executor = original_executor

        return world, applets, heal

    @pytest.mark.parametrize("mode", POLL_DISPATCH_MODES)
    def test_uninstall_cancels_parked_retries(self, mode):
        world, applets, _ = self.retry_world(mode)
        world.sim.run_until(1.5)  # registration polls done
        for i in range(4):
            world.service.ingest_event("ping", {"n": i})
        world.sim.run_until(8.0)  # events observed, first attempts failed
        engine = world.engine
        assert engine.actions_in_retry > 0
        assert conservation_holds(engine)
        in_retry_before = engine.actions_in_retry
        assert len(engine._retry_timers) == in_retry_before
        # the storm: remove every applet while retries are parked
        for applet in applets:
            engine.uninstall_applet(applet.applet_id)
        assert engine.actions_in_retry == 0
        assert len(engine._retry_timers) == 0
        removed = [
            letter for letter in engine.dead_letters
            if letter.reason == "applet_removed"
        ]
        assert len(removed) == in_retry_before
        assert conservation_holds(engine)
        world.sim.run_until(120.0)
        # no zombie retry ever fires for a removed applet
        assert engine.actions_in_retry == 0
        assert engine.actions_delivered == 0
        assert conservation_holds(engine)

    @pytest.mark.parametrize("mode", POLL_DISPATCH_MODES)
    def test_conservation_through_fault_recovery(self, mode):
        world, applets, heal = self.retry_world(mode)
        world.sim.run_until(1.5)
        for i in range(3):
            world.service.ingest_event("ping", {"n": i})
        world.sim.run_until(8.0)
        assert world.engine.actions_in_retry > 0
        # half the fleet removed mid-fault, then the backend recovers
        for applet in applets[: len(applets) // 2]:
            world.engine.uninstall_applet(applet.applet_id)
        assert conservation_holds(world.engine)
        heal()
        world.sim.run_until(200.0)  # parked retries fire at +30s and land
        engine = world.engine
        assert engine.actions_in_retry == 0
        assert engine.actions_delivered > 0
        assert conservation_holds(engine)


class TestStormEquivalenceAcrossModes:
    def test_storm_world_counters_match(self):
        # the uninstall storm is dispatch-mode-invariant end to end
        outcomes = {}
        for mode in POLL_DISPATCH_MODES:
            world, applets = storm_world(mode, 60)
            world.sim.run_until(5.0)
            for applet in applets[::2]:
                world.engine.uninstall_applet(applet.applet_id)
            world.sim.run_until(20.0)
            outcomes[mode] = {
                "polls": world.engine.polls_sent,
                "applets": world.engine.stats()["applets"],
                "per_applet": [
                    world.engine.poll_count(applet.applet_id)
                    for applet in applets[1::2]
                ],
            }
        assert outcomes["heap"] == outcomes["timers"]
