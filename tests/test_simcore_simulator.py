"""Unit tests for the discrete-event kernel (events + simulator)."""

import pytest

from repro.simcore import Event, SimulationError


class TestEvent:
    def test_orders_by_time(self):
        early = Event(1.0, lambda: None)
        late = Event(2.0, lambda: None)
        assert early < late

    def test_same_time_orders_by_priority_then_seq(self):
        first = Event(1.0, lambda: None, priority=0)
        second = Event(1.0, lambda: None, priority=1)
        assert first < second
        a = Event(1.0, lambda: None)
        b = Event(1.0, lambda: None)
        assert a < b  # FIFO via sequence numbers

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(-0.1, lambda: None)

    def test_cancel_prevents_fire(self):
        fired = []
        event = Event(0.0, lambda: fired.append(1))
        event.cancel()
        event.fire()
        assert fired == []
        assert event.canceled

    def test_cancel_is_idempotent(self):
        event = Event(0.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.canceled

    def test_fire_passes_args(self):
        got = []
        Event(0.0, lambda a, b: got.append((a, b)), args=(1, 2)).fire()
        assert got == [(1, 2)]

    def test_repr_mentions_label(self):
        assert "poll" in repr(Event(1.0, lambda: None, label="poll"))


class TestSimulator:
    def test_starts_at_time_zero(self, sim):
        assert sim.now == 0.0
        assert sim.pending == 0

    def test_run_executes_in_time_order(self, sim):
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        fired = sim.run()
        assert order == ["a", "b", "c"]
        assert fired == 3
        assert sim.now == 3.0

    def test_same_time_fifo(self, sim):
        order = []
        for tag in ("x", "y", "z"):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == ["x", "y", "z"]

    def test_schedule_in_past_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_before_now_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until_advances_clock_to_target(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_run_until_excludes_later_events(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(3.0)
        assert fired == [1]
        sim.run_until(6.0)
        assert fired == [1, 5]

    def test_events_can_schedule_events(self, sim):
        result = []

        def outer():
            sim.schedule(1.0, lambda: result.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert result == [2.0]

    def test_cancel_via_returned_handle(self, sim):
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [(1, None)] or fired == [1]  # tuple from lambda
        assert sim.pending == 1

    def test_max_events_bounds_run(self, sim):
        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        fired = sim.run(max_events=25)
        assert fired == 25

    def test_pending_ignores_canceled(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending == 1

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_fired_count_accumulates(self, sim):
        for delay in (1.0, 2.0):
            sim.schedule(delay, lambda: None)
        sim.run()
        assert sim.fired_count == 2

    def test_priority_breaks_time_tie(self, sim):
        order = []
        sim.schedule(1.0, lambda: order.append("low"), priority=5)
        sim.schedule(1.0, lambda: order.append("high"), priority=-5)
        sim.run()
        assert order == ["high", "low"]

    def test_zero_delay_runs_now(self, sim):
        sim.schedule(5.0, lambda: sim.schedule(0.0, lambda: result.append(sim.now)))
        result = []
        sim.run()
        assert result == [5.0]
