"""Serial vs parallel epoch stepping equivalence (ISSUE 10's headline suite).

Parallel stepping changes *how* shard heaps advance — it must never
change *what* happens.  The conservative contract in
:mod:`repro.simcore.parallel` (epoch width = lookahead, cross-shard hops
floored at the lookahead, mailboxes drained in ``(deliver_at, src,
seq)`` order) makes determinism structural, so this suite pins the
strongest form of the claim:

(a) **Byte-identical merged snapshots** — for arbitrary seeds, corpus
    shapes, and publication schedules, ``jobs=1`` (serial round-robin
    stepping) and ``jobs=4`` (threaded stepping) produce byte-for-byte
    identical merged fleet snapshots, across all shard strategies x
    both poll-dispatch modes (hypothesis, end to end over
    :class:`ShardedFleetWorld`).
(b) **Identical fired-action accounting** — executed-action counts,
    polls sent, and total events fired match exactly, not just
    statistically.
(c) **Chaos-scenario identity** — every built-in chaos scenario run on
    the epoch-stepped :class:`ParallelShardedChaosWorld` yields
    identical delivered-action multisets (per-shard T2A samples),
    breaker transition logs, fleet stats, and byte-identical
    deterministic snapshots under serial and threaded stepping — with
    genuine cross-shard traffic in flight (sensors and sinks home to
    different cells).
(d) **Conservation** — ``dispatched == delivered + in_retry +
    dead_lettered + in_replay`` holds per shard and fleet-wide in both
    stepping modes.

``make parallel-check`` runs this file plus a CLI-level snapshot ``cmp``
as the CI gate.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    EngineConfig,
    FixedPollingPolicy,
    POLL_DISPATCH_MODES,
    SHARD_STRATEGIES,
)
from repro.obs.metrics import deterministic_snapshot
from repro.testbed.chaos import CHAOS_SCENARIOS, run_sharded_chaos_scenario
from repro.testbed.workload import ShardedFleetWorld

JOBS = 4


def fleet_config(dispatch: str) -> EngineConfig:
    return EngineConfig(
        poll_policy=FixedPollingPolicy(20.0),
        initial_poll_delay=0.5,
        poll_timeout=10.0,
        action_timeout=10.0,
        poll_dispatch=dispatch,
    )


def run_fleet(jobs, *, strategy, dispatch, seed, n_applets, publications):
    world = ShardedFleetWorld(
        n_applets,
        num_shards=3,
        jobs=jobs,
        engine_config=fleet_config(dispatch),
        seed=seed,
        shard_strategy=strategy,
    )
    try:
        return world.run_publications(publications, spacing=120.0)
    finally:
        world.shutdown()


def snapshot_bytes(snapshot) -> bytes:
    """Canonical wire form: the byte-identity the suite asserts on."""
    return json.dumps(
        deterministic_snapshot(snapshot), sort_keys=True
    ).encode("utf-8")


class TestFleetEquivalence:
    @given(
        strategy=st.sampled_from(sorted(SHARD_STRATEGIES)),
        dispatch=st.sampled_from(sorted(POLL_DISPATCH_MODES)),
        seed=st.integers(min_value=0, max_value=2 ** 16),
        n_applets=st.integers(min_value=6, max_value=24),
        publications=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=6, deadline=None)
    def test_serial_and_threaded_stepping_are_byte_identical(
        self, strategy, dispatch, seed, n_applets, publications
    ):
        serial = run_fleet(
            1, strategy=strategy, dispatch=dispatch, seed=seed,
            n_applets=n_applets, publications=publications,
        )
        threaded = run_fleet(
            JOBS, strategy=strategy, dispatch=dispatch, seed=seed,
            n_applets=n_applets, publications=publications,
        )
        assert serial.actions_executed == threaded.actions_executed
        assert serial.actions_executed == n_applets * publications
        assert serial.polls_sent == threaded.polls_sent
        assert serial.events_fired == threaded.events_fired
        assert snapshot_bytes(serial.metrics_snapshot) == snapshot_bytes(
            threaded.metrics_snapshot
        )

    @pytest.mark.parametrize("strategy", sorted(SHARD_STRATEGIES))
    def test_every_strategy_pinned(self, strategy):
        serial = run_fleet(
            1, strategy=strategy, dispatch="heap", seed=42,
            n_applets=12, publications=3,
        )
        threaded = run_fleet(
            JOBS, strategy=strategy, dispatch="heap", seed=42,
            n_applets=12, publications=3,
        )
        assert serial.actions_executed == threaded.actions_executed == 36
        assert snapshot_bytes(serial.metrics_snapshot) == snapshot_bytes(
            threaded.metrics_snapshot
        )


def run_chaos(scenario, jobs, **kwargs):
    return run_sharded_chaos_scenario(
        scenario, parallel=True, jobs=jobs, **kwargs
    )


def assert_chaos_identical(serial, threaded):
    # The delivered-action multiset: per-shard, per-fault-phase T2A
    # samples carry both identity and timing of every delivery.
    assert serial.t2a_by_shard == threaded.t2a_by_shard
    assert (
        serial.breaker_transitions_by_shard
        == threaded.breaker_transitions_by_shard
    )
    assert serial.fleet_stats == threaded.fleet_stats
    assert serial.shard_stats == threaded.shard_stats
    assert serial.events_injected == threaded.events_injected
    assert serial.events_observed == threaded.events_observed
    assert serial.fault_window_requests == threaded.fault_window_requests
    serial_bytes = json.dumps(serial.snapshot, sort_keys=True).encode()
    threaded_bytes = json.dumps(threaded.snapshot, sort_keys=True).encode()
    assert serial_bytes == threaded_bytes
    assert json.dumps(
        serial.merged_engine_snapshot, sort_keys=True
    ) == json.dumps(threaded.merged_engine_snapshot, sort_keys=True)


class TestChaosEquivalence:
    @pytest.mark.parametrize("scenario", sorted(CHAOS_SCENARIOS))
    def test_scenarios_byte_identical(self, scenario):
        serial = run_chaos(scenario, jobs=1)
        threaded = run_chaos(scenario, jobs=JOBS)
        assert serial.jobs == 1 and threaded.jobs == JOBS
        assert_chaos_identical(serial, threaded)
        # The equivalence must be exercised, not vacuous: the epoch
        # machinery ran and real cross-shard traffic was in flight.
        assert threaded.epochs > 0
        assert threaded.cross_shard_messages > 0
        assert threaded.mailbox_messages >= threaded.cross_shard_messages

    @pytest.mark.parametrize("strategy", sorted(SHARD_STRATEGIES))
    def test_strategies_byte_identical_under_partition(self, strategy):
        serial = run_chaos("partition", jobs=1, shard_strategy=strategy)
        threaded = run_chaos("partition", jobs=JOBS, shard_strategy=strategy)
        assert_chaos_identical(serial, threaded)

    def test_conservation_holds_in_both_modes(self):
        for jobs in (1, JOBS):
            result = run_chaos("outage", jobs=jobs)
            for stats in result.shard_stats:
                lost = (
                    stats["actions_dispatched"]
                    - stats["actions_delivered"]
                    - stats["actions_in_retry"]
                    - stats["dead_letters"]
                    - stats["actions_in_replay"]
                )
                assert lost == 0
