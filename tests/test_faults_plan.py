"""Tests for declarative fault plans and the fault injector."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    link_down,
    link_latency,
    link_loss,
    service_brownout,
    service_flap,
    service_outage,
)
from repro.net import Address, FixedLatency, HttpNode, Network
from repro.services import ActionEndpoint, PartnerService, TriggerEndpoint
from repro.simcore import Rng, Simulator


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="meteor_strike", at=0.0, duration=1.0).validate()

    def test_negative_times_rejected(self):
        with pytest.raises(FaultPlanError):
            service_outage("svc", at=-1.0, duration=10.0)
        with pytest.raises(FaultPlanError):
            service_outage("svc", at=0.0, duration=0.0)

    def test_service_faults_need_slug(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="service_outage", at=0.0, duration=1.0).validate()

    def test_link_faults_need_endpoints(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="link_down", at=0.0, duration=1.0, a="x").validate()

    def test_brownout_error_rate_bounds(self):
        with pytest.raises(FaultPlanError):
            service_brownout("svc", at=0.0, duration=1.0, error_rate=1.5)

    def test_loss_bounds(self):
        with pytest.raises(FaultPlanError):
            link_loss("a", "b", at=0.0, duration=1.0, loss=0.0)

    def test_flap_duty_bounds(self):
        with pytest.raises(FaultPlanError):
            service_flap("svc", at=0.0, duration=10.0, duty=1.0)

    def test_latency_multiplier_bounds(self):
        with pytest.raises(FaultPlanError):
            link_latency("a", "b", at=0.0, duration=1.0, multiplier=0.5)


class TestPlanSerialization:
    def plan(self):
        return FaultPlan((
            service_outage("hue", at=10.0, duration=60.0),
            service_brownout("wemo", at=5.0, duration=30.0,
                             error_rate=0.25, extra_latency=0.4),
            link_down("engine.cloud", "core.internet", at=40.0, duration=20.0),
            link_loss("a.cloud", "b.cloud", at=1.0, duration=9.0, loss=0.1),
            service_flap("nest", at=0.0, duration=100.0, period=10.0, duty=0.3),
        ))

    def test_round_trip(self):
        plan = self.plan()
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_bare_list_accepted(self):
        text = '[{"kind": "service_outage", "at": 1, "duration": 2, "service": "x"}]'
        plan = FaultPlan.from_json(text)
        assert len(plan) == 1 and plan.specs[0].service == "x"

    def test_neutral_defaults_dropped_from_json(self):
        spec = service_outage("hue", at=10.0, duration=60.0)
        assert set(spec.to_dict()) == {"kind", "at", "duration", "service"}

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec.from_dict({"kind": "service_outage", "at": 0, "duration": 1,
                                 "service": "x", "severity": 11})

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("{nope")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json('{"not_faults": []}')

    def test_end_time_and_services(self):
        plan = self.plan()
        assert plan.end_time == 100.0
        assert plan.services() == ["hue", "nest", "wemo"]

    def test_extended_returns_new_plan(self):
        plan = FaultPlan()
        bigger = plan.extended(service_outage("x", at=0.0, duration=1.0))
        assert len(plan) == 0 and len(bigger) == 1

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(self.plan().to_json())
        assert FaultPlan.from_file(str(path)) == self.plan()


def build_world():
    sim = Simulator()
    net = Network(sim, Rng(5))
    client = net.add_node(HttpNode(Address("client.test")))
    service = net.add_node(PartnerService(Address("svc.test"), slug="svc",
                                          service_time=0.0))
    service.add_trigger(TriggerEndpoint(slug="t", name="T"))
    service.add_action(ActionEndpoint(slug="a", name="A", executor=lambda f: None))
    net.connect(client.address, service.address, FixedLatency(0.01))
    injector = FaultInjector(sim, net, services=(service,), rng=Rng(6, name="faults"))
    return sim, net, client, service, injector


class TestInjector:
    def test_unknown_service_fails_fast(self):
        sim, net, client, service, injector = build_world()
        with pytest.raises(FaultPlanError):
            injector.apply(FaultPlan((service_outage("ghost", at=0.0, duration=1.0),)))

    def test_unknown_link_fails_fast(self):
        sim, net, client, service, injector = build_world()
        with pytest.raises(FaultPlanError):
            injector.apply(FaultPlan((link_down("client.test", "ghost.test",
                                                at=0.0, duration=1.0),)))

    def test_outage_window(self):
        sim, net, client, service, injector = build_world()
        injector.apply(FaultPlan((service_outage("svc", at=10.0, duration=20.0),)))
        sim.run_until(5.0)
        assert not service.outage
        sim.run_until(15.0)
        assert service.outage
        sim.run_until(35.0)
        assert not service.outage
        assert injector.activations == 1 and injector.deactivations == 1

    def test_brownout_latency_saved_and_restored(self):
        sim, net, client, service, injector = build_world()
        service.service_time = 0.05
        injector.apply(FaultPlan((
            service_brownout("svc", at=1.0, duration=4.0,
                             error_rate=1.0, extra_latency=0.5),
        )))
        sim.run_until(2.0)
        assert service.service_time == pytest.approx(0.55)
        assert service.faults is not None and service.faults.error_rate == 1.0
        sim.run_until(6.0)
        assert service.service_time == pytest.approx(0.05)
        assert service.faults.error_rate == 0.0

    def test_brownout_rejects_requests(self):
        sim, net, client, service, injector = build_world()
        injector.apply(FaultPlan((
            service_brownout("svc", at=0.0, duration=100.0, error_rate=1.0),
        )))
        got = []
        sim.schedule(1.0, lambda: client.get(service.address, "/ifttt/v1/status",
                                             on_response=got.append))
        sim.run_until(5.0)
        assert got[0].status == 503
        assert service.requests_rejected_by_faults == 1

    def test_link_down_window_partitions(self):
        sim, net, client, service, injector = build_world()
        injector.apply(FaultPlan((
            link_down("client.test", "svc.test", at=2.0, duration=5.0),
        )))
        got = []
        sim.schedule(3.0, lambda: client.get(service.address, "/ifttt/v1/status",
                                             on_response=got.append))
        sim.schedule(10.0, lambda: client.get(service.address, "/ifttt/v1/status",
                                              on_response=got.append))
        sim.run_until(20.0)
        assert got[0].status == 503          # refused during the partition
        assert got[1].ok                     # healed

    def test_link_loss_drops_messages(self):
        sim, net, client, service, injector = build_world()
        injector.apply(FaultPlan((
            link_loss("client.test", "svc.test", at=0.0, duration=100.0, loss=1.0),
        )))
        got = []
        sim.schedule(1.0, lambda: client.get(service.address, "/ifttt/v1/status",
                                             on_response=got.append, timeout=5.0))
        sim.run_until(10.0)
        assert got[0].timed_out              # lost in flight => classic timeout
        assert net.faults.messages_lost > 0
        assert net.messages_dropped > 0

    def test_link_latency_inflates_delay(self):
        sim, net, client, service, injector = build_world()
        injector.apply(FaultPlan((
            link_latency("client.test", "svc.test", at=0.0, duration=100.0,
                         multiplier=1.0, extra=1.0),
        )))
        got = []
        sim.schedule(1.0, lambda: client.get(service.address, "/ifttt/v1/status",
                                             on_response=got.append))
        sim.run_until(10.0)
        # 1 s extra per direction on top of the 10 ms link
        assert got[0].elapsed == pytest.approx(2.02)

    def test_flap_toggles_outage(self):
        sim, net, client, service, injector = build_world()
        injector.apply(FaultPlan((
            service_flap("svc", at=0.0, duration=40.0, period=20.0, duty=0.5),
        )))
        states = []
        for t in (5.0, 15.0, 25.0, 35.0, 45.0):
            sim.schedule(t - sim.now if t > sim.now else 0.0, lambda: None)
            sim.run_until(t)
            states.append(service.outage)
        assert states == [True, False, True, False, False]  # healthy after window

    def test_zero_cost_hooks_absent_by_default(self):
        sim, net, client, service, injector = build_world()
        assert net.faults is None
        assert service.faults is None
        injector.apply(FaultPlan((service_outage("svc", at=0.0, duration=1.0),)))
        sim.run_until(5.0)
        # outage reuses set_outage; no per-message hook was installed
        assert net.faults is None
