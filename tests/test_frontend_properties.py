"""Property tests: the parser inverts the renderer for arbitrary records."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crawler.parser import parse_applet_page, parse_index_page, parse_service_page
from repro.ecosystem.corpus import ActionRecord, AppletRecord, ServiceRecord, TriggerRecord
from repro.frontend.pages import render_applet_page, render_index_page, render_service_page

# Text free of the record separators the regex-based parser keys on.
name_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc"), blacklist_characters="<>\n\r"),
    min_size=1, max_size=40,
).map(str.strip).filter(bool)

slug_text = st.from_regex(r"[a-z][a-z0-9_]{0,20}", fullmatch=True)


@settings(max_examples=50, deadline=None)
@given(
    name=name_text,
    author=slug_text,
    is_user=st.booleans(),
    add_count=st.integers(min_value=0, max_value=10**6),
    trigger_slug=slug_text,
    action_slug=slug_text,
)
def test_applet_page_round_trip(name, author, is_user, add_count, trigger_slug, action_slug):
    applet = AppletRecord(
        applet_id=123456, name=name, description=f"{name}. description",
        trigger_slug=f"{trigger_slug}.t", trigger_service_slug=trigger_slug,
        action_slug=f"{action_slug}.a", action_service_slug=action_slug,
        author=author, author_is_user=is_user, add_count=add_count,
    )
    page = render_applet_page(applet, "Trig Name", "Trig Service",
                              "Act Name", "Act Service", add_count)
    parsed = parse_applet_page(page)
    assert parsed["name"] == name
    assert parsed["add_count"] == add_count
    assert parsed["author"] == author
    assert parsed["author_kind"] == ("user" if is_user else "service")
    assert parsed["trigger_service_slug"] == trigger_slug
    assert parsed["action_name_slug"] == f"{action_slug}.a"


@settings(max_examples=30, deadline=None)
@given(entries=st.lists(st.tuples(slug_text, name_text), max_size=10,
                        unique_by=lambda e: e[0]))
def test_index_page_round_trip(entries):
    services = [
        ServiceRecord(slug=slug, name=name, description="", category_index=1)
        for slug, name in entries
    ]
    page = render_index_page(services)
    parsed = parse_index_page(page)
    assert {(e["slug"], e["name"]) for e in parsed} == set(entries)


@settings(max_examples=30, deadline=None)
@given(
    service_name=name_text,
    triggers=st.lists(name_text, max_size=5),
    actions=st.lists(name_text, max_size=5),
)
def test_service_page_round_trip(service_name, triggers, actions):
    service = ServiceRecord(slug="svc", name=service_name, description="d",
                            category_index=3)
    service.triggers = [
        TriggerRecord(slug=f"svc.t{i}", name=name, service_slug="svc")
        for i, name in enumerate(triggers)
    ]
    service.actions = [
        ActionRecord(slug=f"svc.a{i}", name=name, service_slug="svc")
        for i, name in enumerate(actions)
    ]
    parsed = parse_service_page(render_service_page(service, week=24))
    assert parsed["name"] == service_name
    assert [t["name"] for t in parsed["triggers"]] == triggers
    assert [a["name"] for a in parsed["actions"]] == actions
