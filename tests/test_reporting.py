"""Tests for the table/CDF rendering helpers."""

import pytest

from repro.reporting import cdf_at, cdf_points, render_table, summarize_latencies


class TestRenderTable:
    def test_alignment_and_structure(self):
        text = render_table(["Name", "Count"], [["alpha", 10], ["b", 2000]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "Name" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert lines[3].endswith("2000")

    def test_float_formatting(self):
        text = render_table(["x"], [[3.14159]])
        assert "3.1" in text and "3.14159" not in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestCdf:
    def test_points_monotone(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)), (3.0, 1.0)]

    def test_points_empty(self):
        assert cdf_points([]) == []

    def test_cdf_at(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(samples, 2.5) == 0.5
        assert cdf_at(samples, 0.0) == 0.0
        assert cdf_at(samples, 10.0) == 1.0
        with pytest.raises(ValueError):
            cdf_at([], 1.0)

    def test_summary(self):
        summary = summarize_latencies([10.0, 20.0, 30.0, 40.0])
        assert summary["n"] == 4
        assert summary["p50"] == 25.0
        assert summary["min"] == 10.0
        assert summary["max"] == 40.0
        assert summary["mean"] == 25.0
        with pytest.raises(ValueError):
            summarize_latencies([])
