"""Integration tests for the §4 experiment harness (scenarios, sequential,
concurrent, loops, timeline)."""

import pytest

from repro.testbed import (
    build_scenario,
    capture_timeline,
    find_clusters,
    run_concurrent_experiment,
    run_explicit_loop_experiment,
    run_implicit_loop_experiment,
    run_scenario_t2a,
    run_sequential_experiment,
)
from repro.testbed.scenarios import SCENARIOS, scenario
from repro.testbed.timeline import format_timeline


class TestScenarios:
    def test_four_scenarios_defined(self):
        assert set(SCENARIOS) == {"official", "E1", "E2", "E3"}

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            scenario("E4")

    def test_e3_builds_fast_engine(self):
        testbed, controller, chosen = build_scenario("E3", seed=5)
        policy = testbed.config.engine_config.poll_policy
        assert type(policy).__name__ == "FixedPollingPolicy"
        assert policy.interval == 1.0

    def test_e3_latency_is_seconds(self):
        latencies = run_scenario_t2a("E3", runs=5, seed=5, spacing=20.0)
        assert len(latencies) == 5
        assert max(latencies) < 5.0

    def test_e2_latency_is_minutes(self):
        latencies = run_scenario_t2a("E2", runs=5, seed=5, spacing=60.0)
        assert len(latencies) == 5
        assert min(latencies) > 5.0  # polling-bound

    def test_e1_and_e2_similar_e3_dramatically_better(self):
        e1 = run_scenario_t2a("E1", runs=8, seed=6)
        e2 = run_scenario_t2a("E2", runs=8, seed=7)
        e3 = run_scenario_t2a("E3", runs=8, seed=8, spacing=20.0)
        def median(xs):
            return sorted(xs)[len(xs) // 2]

        assert median(e3) < median(e1) / 10
        assert median(e3) < median(e2) / 10
        assert 0.3 < median(e1) / median(e2) < 3.0  # E1 ~ E2


class TestFindClusters:
    def test_single_cluster(self):
        assert find_clusters([1.0, 2.0, 3.0], gap_threshold=5.0) == [[1.0, 2.0, 3.0]]

    def test_split_on_gap(self):
        clusters = find_clusters([1.0, 2.0, 50.0, 51.0], gap_threshold=10.0)
        assert clusters == [[1.0, 2.0], [50.0, 51.0]]

    def test_unsorted_input(self):
        clusters = find_clusters([51.0, 1.0, 2.0, 50.0], gap_threshold=10.0)
        assert clusters == [[1.0, 2.0], [50.0, 51.0]]

    def test_empty(self):
        assert find_clusters([]) == []

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            find_clusters([1.0], gap_threshold=0)


class TestSequentialExperiment:
    def test_actions_form_clusters(self):
        result = run_sequential_experiment(
            applet_key="A4", triggers=12, interval=5.0, seed=9, settle_after=2000.0
        )
        assert len(result.trigger_times) == 12
        assert len(result.action_times) == 12  # every trigger eventually acted on
        # fewer clusters than triggers: the batching compressed them
        assert 1 <= len(result.clusters) < 12
        assert sum(result.cluster_sizes) == 12

    def test_actions_after_triggers(self):
        result = run_sequential_experiment(
            applet_key="A4", triggers=6, interval=5.0, seed=10, settle_after=2000.0
        )
        assert min(result.action_times) > min(result.trigger_times)


class TestConcurrentExperiment:
    def test_latency_differences_spread(self):
        result = run_concurrent_experiment(runs=6, seed=11)
        diffs = result.differences
        assert len(diffs) == 6
        # §4: per-applet independent polling makes the difference fluctuate
        assert result.spread > 10.0
        assert any(d > 0 for d in diffs) or any(d < 0 for d in diffs)


class TestLoopExperiments:
    def test_explicit_loop_self_sustains_and_static_detects(self):
        result = run_explicit_loop_experiment(duration=2400.0, seed=12)
        assert result.looped
        assert result.emails_received >= 3
        assert len(result.static_findings) == 1  # visible to offline analysis
        assert result.runtime_flagged == []  # detection disabled, as in IFTTT

    def test_implicit_loop_invisible_to_blind_analysis(self):
        result = run_implicit_loop_experiment(duration=2400.0, seed=12)
        assert result.looped
        assert result.static_findings == []  # IFTTT cannot see it
        assert len(result.static_findings_with_external_knowledge) == 1

    def test_runtime_detection_stops_the_loop(self):
        unchecked = run_implicit_loop_experiment(duration=7200.0, seed=13)
        checked = run_implicit_loop_experiment(duration=7200.0, seed=13, runtime_detection=True)
        assert checked.runtime_flagged
        assert checked.disabled_applets
        assert checked.rows_added < unchecked.rows_added


class TestTimeline:
    def test_table5_structure(self):
        entries = capture_timeline(seed=21)
        assert entries[0].t == 0.0
        descriptions = " | ".join(e.event for e in entries)
        assert "proxy" in descriptions.lower()
        assert "polls trigger service" in descriptions
        assert "action" in descriptions.lower()
        # monotone timeline ending at the confirmed action
        times = [e.t for e in entries]
        assert times == sorted(times)
        # the poll wait dominates (Table 5: 0.16 s -> 81.1 s jump)
        assert entries[-1].t > 10.0

    def test_proxy_observation_is_fast(self):
        entries = capture_timeline(seed=22)
        proxy_entries = [e for e in entries if "observes the trigger" in e.event]
        assert proxy_entries and proxy_entries[0].t < 1.0

    def test_format_timeline(self):
        entries = capture_timeline(seed=23)
        text = format_timeline(entries)
        assert "t (s)" in text
        assert "Event Description" in text
