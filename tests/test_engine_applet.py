"""Tests for applet data model, OAuth, permissions, and polling policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine import (
    ActionRef,
    AdaptivePollingPolicy,
    Applet,
    AppletState,
    FixedPollingPolicy,
    PerEndpointPermissionModel,
    ProductionPollingPolicy,
    ServicePermissionModel,
    TriggerRef,
    excess_privilege,
)
from repro.engine.oauth import OAuthAuthority, OAuthError, TokenCache
from repro.engine.permissions import action_scope, required_scopes, trigger_scope
from repro.simcore import Rng


def make_applet(applet_id=1, user="alice", trigger_fields=None, action_fields=None):
    return Applet(
        applet_id=applet_id,
        name="test",
        user=user,
        trigger=TriggerRef("gmail", "new_email", trigger_fields or {}),
        action=ActionRef("philips_hue", "turn_on_lights", action_fields or {"lamp_id": "l1"}),
    )


class TestTriggerRef:
    def test_identity_is_stable(self):
        ref = TriggerRef("gmail", "new_email", {"folder": "inbox"})
        assert ref.identity(1, "alice") == ref.identity(1, "alice")

    def test_identity_varies_by_applet_user_fields(self):
        ref = TriggerRef("gmail", "new_email")
        assert ref.identity(1, "alice") != ref.identity(2, "alice")
        assert ref.identity(1, "alice") != ref.identity(1, "bob")
        other = TriggerRef("gmail", "new_email", {"folder": "work"})
        assert ref.identity(1, "alice") != other.identity(1, "alice")


class TestActionRefTemplating:
    def test_substitutes_ingredient(self):
        ref = ActionRef("sheets", "add_row", {"row": "got {{subject}}"})
        assert ref.resolve_fields({"subject": "hi"}) == {"row": "got hi"}

    def test_missing_ingredient_renders_blank(self):
        ref = ActionRef("sheets", "add_row", {"row": "{{nope}}!"})
        assert ref.resolve_fields({}) == {"row": "!"}

    def test_non_string_fields_pass_through(self):
        ref = ActionRef("hue", "set", {"brightness": 200})
        assert ref.resolve_fields({"x": 1}) == {"brightness": 200}

    def test_multiple_and_spaced_templates(self):
        ref = ActionRef("x", "y", {"s": "{{ a }}-{{b}}"})
        assert ref.resolve_fields({"a": "1", "b": "2"}) == {"s": "1-2"}

    @given(st.dictionaries(st.from_regex(r"[a-z_][a-z0-9_]{0,10}", fullmatch=True),
                           st.text(max_size=20), max_size=5))
    def test_templating_never_raises(self, ingredients):
        ref = ActionRef("x", "y", {"s": "pre {{key}} post", "n": 3})
        resolved = ref.resolve_fields(ingredients)
        assert resolved["n"] == 3
        assert resolved["s"].startswith("pre ")


class TestApplet:
    def test_enabled_by_default(self):
        applet = make_applet()
        assert applet.enabled
        applet.state = AppletState.DISABLED
        assert not applet.enabled

    def test_describe(self):
        assert make_applet().describe() == "gmail.new_email -> philips_hue.turn_on_lights"

    def test_trigger_identity_property(self):
        applet = make_applet(applet_id=7, user="carol")
        assert applet.trigger_identity == applet.trigger.identity(7, "carol")


class TestOAuth:
    def test_full_flow(self):
        authority = OAuthAuthority("gmail")
        authority.register_user("alice", "pw")
        code = authority.authorize("alice", "pw")
        grant = authority.exchange(code)
        assert grant.user == "alice"
        assert authority.validate(grant.access_token)

    def test_bad_credentials_rejected(self):
        authority = OAuthAuthority("gmail")
        authority.register_user("alice", "pw")
        with pytest.raises(OAuthError):
            authority.authorize("alice", "wrong")
        with pytest.raises(OAuthError):
            authority.authorize("mallory", "pw")

    def test_code_single_use(self):
        authority = OAuthAuthority("gmail")
        authority.register_user("alice", "pw")
        code = authority.authorize("alice", "pw")
        authority.exchange(code)
        with pytest.raises(OAuthError):
            authority.exchange(code)

    def test_revoke(self):
        authority = OAuthAuthority("gmail")
        authority.register_user("alice", "pw")
        grant = authority.exchange(authority.authorize("alice", "pw"))
        authority.revoke(grant.access_token)
        assert not authority.validate(grant.access_token)

    def test_token_cache(self):
        authority = OAuthAuthority("gmail")
        authority.register_user("alice", "pw")
        grant = authority.exchange(authority.authorize("alice", "pw"))
        cache = TokenCache()
        cache.store(grant)
        assert cache.lookup("alice", "gmail") == grant.access_token
        assert cache.lookup("alice", "hue") is None
        cache.forget("alice", "gmail")
        assert cache.lookup("alice", "gmail") is None


class TestPermissions:
    def _models(self):
        coarse = ServicePermissionModel()
        fine = PerEndpointPermissionModel()
        for model in (coarse, fine):
            model.register_service(
                "gmail",
                trigger_slugs=["new_email", "new_attachment"],
                action_slugs=["send_email"],
                extra_operations=["delete", "manage"],
            )
        return coarse, fine

    def test_coarse_grants_everything(self):
        coarse, _ = self._models()
        granted = coarse.grant_all_scopes("alice", "gmail")
        assert len(granted) == 5  # 2 triggers + 1 action + 2 extras
        assert coarse.granted("alice") == granted

    def test_fine_grants_only_needed(self):
        _, fine = self._models()
        applet = make_applet()
        applet = Applet(
            applet_id=1, name="t", user="alice",
            trigger=TriggerRef("gmail", "new_email"),
            action=ActionRef("gmail", "send_email"),
        )
        granted = fine.grant_for_applet(applet)
        assert trigger_scope("gmail", "new_email") in granted
        assert action_scope("gmail", "send_email") in granted
        assert len(granted) == 2

    def test_excess_privilege_quantified(self):
        coarse, fine = self._models()
        applet = Applet(
            applet_id=1, name="t", user="alice",
            trigger=TriggerRef("gmail", "new_email"),
            action=ActionRef("gmail", "send_email"),
        )
        coarse.grant_all_scopes("alice", "gmail")
        needed = required_scopes([applet])
        excess, ratio = excess_privilege(coarse.granted("alice"), needed)
        assert len(excess) == 3  # new_attachment read + delete + manage
        assert ratio == pytest.approx(3 / 5)

    def test_excess_with_nothing_granted(self):
        excess, ratio = excess_privilege(frozenset(), frozenset())
        assert excess == frozenset() and ratio == 0.0


class TestPollingPolicies:
    def test_production_bounds_and_variability(self):
        policy = ProductionPollingPolicy()
        rng = Rng(1)
        samples = [policy.next_interval(rng) for _ in range(2000)]
        assert min(samples) >= policy.minimum
        assert max(samples) > 3 * min(samples)  # highly variable

    def test_production_inflation_tail(self):
        policy = ProductionPollingPolicy(inflation_prob=1.0, inflation_min=5, inflation_max=5)
        base = ProductionPollingPolicy(inflation_prob=0.0)
        rng_a, rng_b = Rng(2), Rng(2)
        inflated_mean = sum(policy.next_interval(rng_a) for _ in range(500)) / 500
        plain_mean = sum(base.next_interval(rng_b) for _ in range(500)) / 500
        assert inflated_mean > 3 * plain_mean

    def test_production_validation(self):
        with pytest.raises(ValueError):
            ProductionPollingPolicy(median=-1)
        with pytest.raises(ValueError):
            ProductionPollingPolicy(inflation_prob=2.0)

    def test_fixed_policy(self):
        policy = FixedPollingPolicy(1.0)
        assert policy.next_interval(Rng(1)) == 1.0
        with pytest.raises(ValueError):
            FixedPollingPolicy(0.0)

    def test_clone_is_independent(self):
        policy = AdaptivePollingPolicy()
        clone = policy.clone()
        policy.observe_events(5)
        assert clone.activity == 0.0

    def test_adaptive_speeds_up_on_activity(self):
        policy = AdaptivePollingPolicy(fast=5.0, slow=300.0, jitter=0.0)
        rng = Rng(3)
        idle = policy.next_interval(rng)
        for _ in range(10):
            policy.observe_events(3)
        busy = policy.next_interval(rng)
        assert busy < idle / 5

    def test_adaptive_backs_off_when_idle(self):
        policy = AdaptivePollingPolicy(fast=5.0, slow=300.0, jitter=0.0)
        for _ in range(10):
            policy.observe_events(1)
        for _ in range(30):
            policy.observe_events(0)
        assert policy.next_interval(Rng(4)) > 200

    def test_adaptive_validation(self):
        with pytest.raises(ValueError):
            AdaptivePollingPolicy(fast=10, slow=5)
        with pytest.raises(ValueError):
            AdaptivePollingPolicy(ewma_alpha=0)
