"""Failure-injection tests: outages, timeouts, and engine resilience.

The paper never measures IFTTT under failures, but a production-credible
engine must survive them; these tests pin the recovery semantics the
implementation provides (buffered events delivered after recovery,
deduplication intact, counters faithful).
"""

import pytest

from repro.engine import ActionRef, EngineConfig, FixedPollingPolicy, IftttEngine, TriggerRef
from repro.engine.oauth import OAuthAuthority
from repro.net import Address, FixedLatency, Network
from repro.services import ActionEndpoint, PartnerService, TriggerEndpoint
from repro.simcore import Rng, Simulator, Trace


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, Rng(91))
    trace = Trace()
    engine = net.add_node(IftttEngine(
        Address("engine.cloud"),
        config=EngineConfig(poll_policy=FixedPollingPolicy(10.0), initial_poll_delay=0.5,
                            poll_timeout=5.0, action_timeout=5.0),
        rng=Rng(8), trace=trace, service_time=0.0,
    ))
    service = net.add_node(PartnerService(Address("svc.cloud"), slug="svc",
                                          trace=trace, service_time=0.0))
    net.connect(engine.address, service.address, FixedLatency(0.01))
    executed = []
    service.add_trigger(TriggerEndpoint(slug="ping", name="Ping"))
    service.add_action(ActionEndpoint(slug="record", name="Record",
                                      executor=lambda fields: executed.append(dict(fields))))
    engine.publish_service(service)
    authority = OAuthAuthority("svc")
    authority.register_user("alice", "pw")
    engine.connect_service("alice", service, authority, "pw")
    applet = engine.install_applet(
        user="alice", name="ping->record",
        trigger=TriggerRef("svc", "ping"), action=ActionRef("svc", "record", {"n": "{{n}}"}),
    )
    sim.run_until(2.0)
    return sim, net, engine, service, applet, executed


class TestServiceOutage:
    def test_polls_fail_during_outage(self, world):
        sim, _, engine, service, _, executed = world
        service.set_outage(True)
        service.ingest_event("ping", {"n": 1})
        sim.run_until(60.0)
        assert executed == []
        assert engine.poll_failures > 0
        assert service.requests_rejected_during_outage > 0

    def test_buffered_events_delivered_after_recovery(self, world):
        sim, _, engine, service, _, executed = world
        service.set_outage(True)
        for n in range(3):
            service.ingest_event("ping", {"n": n})
        sim.run_until(60.0)
        service.set_outage(False)
        sim.run_until(120.0)
        assert [f["n"] for f in executed] == ["0", "1", "2"]

    def test_no_duplicates_after_recovery(self, world):
        sim, _, engine, service, _, executed = world
        service.ingest_event("ping", {"n": 0})
        sim.run_until(30.0)
        count_before = len(executed)
        service.set_outage(True)
        sim.run_until(60.0)
        service.set_outage(False)
        sim.run_until(120.0)
        assert len(executed) == count_before  # old event not re-executed

    def test_engine_keeps_polling_through_outage(self, world):
        sim, _, engine, service, applet, _ = world
        polls_before = engine.poll_count(applet.applet_id)
        service.set_outage(True)
        sim.run_until(60.0)
        assert engine.poll_count(applet.applet_id) > polls_before

    def test_status_endpoint_reflects_outage(self, world):
        sim, net, engine, service, _, _ = world
        got = []
        engine.get(service.address, "/ifttt/v1/status", on_response=got.append)
        sim.run_until(sim.now + 1.0)
        assert got[0].ok
        service.set_outage(True)
        engine.get(service.address, "/ifttt/v1/status", on_response=got.append)
        sim.run_until(sim.now + 1.0)
        assert got[1].status == 503


class TestNetworkPartition:
    def test_partition_fails_fast_and_recovers(self, world):
        sim, net, engine, service, _, executed = world
        net.set_link_state(engine.address, service.address, up=False)
        service.ingest_event("ping", {"n": 7})
        sim.run_until(60.0)
        assert executed == []
        # The network reports the missing route synchronously, so polls
        # fail as immediate connection-refused 503s instead of burning
        # the full HTTP timeout per attempt.
        assert engine.connection_refused > 0
        assert engine.timeouts == 0
        assert engine.poll_failures > 0      # counted as failed polls
        net.set_link_state(engine.address, service.address, up=True)
        sim.run_until(150.0)
        assert [f["n"] for f in executed] == ["7"]

    def test_action_failure_counted(self, world):
        sim, net, engine, service, _, executed = world

        def exploding(fields):
            from repro.net.http import HttpError
            raise HttpError(500, "backend exploded")

        service._actions["record"].executor = exploding
        service.ingest_event("ping", {"n": 1})
        sim.run_until(60.0)
        assert engine.action_failures > 0
        assert executed == []


class TestBreakerThroughOutage:
    """End-to-end ``set_outage`` coverage: polls keep flowing, the
    breaker opens, and T2A recovers once the outage lifts."""

    def test_breaker_opens_sheds_and_recovers(self, world):
        from repro.engine import BreakerState

        sim, _, engine, service, applet, executed = world
        polls_before = engine.poll_count(applet.applet_id)
        service.set_outage(True)
        sim.run_until(62.0)
        # Polling continued through the outage (attempts, incl. shed ones).
        assert engine.poll_count(applet.applet_id) > polls_before
        breaker = engine.breaker_for("svc")
        assert any(new is BreakerState.OPEN for _, _, new in breaker.transitions)
        assert engine.polls_shed > 0         # open breaker shed real sends
        assert service.requests_rejected_during_outage > 0

        heal_at = sim.now
        service.set_outage(False)
        service.ingest_event("ping", {"n": 9})
        # Worst-case recovery: wait out the breaker's recovery timeout,
        # then one regular polling interval lands the half-open probe.
        recovery = engine.config.breaker_policy.recovery_timeout
        interval = 10.0  # the fixture's FixedPollingPolicy period
        deadline = heal_at + recovery + 2 * interval
        while not executed and sim.now < deadline:
            sim.run_until(sim.now + 1.0)
        assert [f["n"] for f in executed] == ["9"]
        assert sim.now - heal_at <= recovery + 2 * interval
        assert breaker.state is BreakerState.CLOSED


class TestDeviceOutageViaTestbed:
    def test_hue_service_outage_delays_but_not_loses_a2(self):
        from repro.engine import EngineConfig, FixedPollingPolicy
        from repro.testbed import Testbed, TestbedConfig, TestController
        from repro.testbed.applets import applet_spec

        config = TestbedConfig(
            seed=37,
            engine_config=EngineConfig(poll_policy=FixedPollingPolicy(5.0), initial_poll_delay=0.5),
        )
        testbed = Testbed(config).build()
        controller = TestController(testbed, timeout=300.0)
        controller.install("A2")
        testbed.run_for(5.0)
        # trigger-side (wemo) service goes down before the press
        testbed.wemo_service.set_outage(True)
        spec = applet_spec("A2")
        spec.reset(testbed)
        testbed.run_for(10.0)
        t0 = testbed.sim.now
        spec.activate(testbed)
        testbed.run_for(60.0)
        assert spec.observe(testbed, t0) is None  # stuck behind the outage
        testbed.wemo_service.set_outage(False)
        testbed.run_for(60.0)
        observed = spec.observe(testbed, t0)
        assert observed is not None  # delivered after recovery
