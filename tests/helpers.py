"""Shared world-building helpers for the engine-facing test suites.

``test_engine_core``, ``test_faults_resilience``, ``test_sharding``, and
friends all need the same miniature universe — a simulator, a network,
one engine, one partner service with a ``ping`` trigger and a recording
``record`` action, and a connected user — differing only in seeds,
engine config, and how deliveries are recorded.  This module holds the
one canonical builder so the suites can't drift apart; each suite keeps
a thin wrapper pinning its historical seeds (timing- and jitter-exact
assertions depend on them).
"""

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.engine import (
    ActionRef,
    Applet,
    EngineConfig,
    FixedPollingPolicy,
    IftttEngine,
    TriggerRef,
)
from repro.engine.oauth import OAuthAuthority
from repro.net import Address, FixedLatency, Network
from repro.services import ActionEndpoint, PartnerService, TriggerEndpoint
from repro.simcore import Rng, Simulator, Trace

DEFAULT_USER = "alice"
DEFAULT_SLUG = "svc"


@dataclass
class EngineWorld:
    """Everything :func:`build_engine_world` wires together."""

    sim: Simulator
    net: Network
    engine: IftttEngine
    service: PartnerService
    #: Sink-side delivery log: ``dict(fields)`` per execution, or
    #: ``(sim.now, dict(fields))`` tuples when built with
    #: ``record_times=True``.
    executed: List[Any]
    trace: Optional[Trace]
    authority: OAuthAuthority
    user: str = DEFAULT_USER


def default_engine_config(**overrides) -> EngineConfig:
    """The suites' canonical fast-poll config (10 s fixed, quick start)."""
    settings: Dict[str, Any] = dict(
        poll_policy=FixedPollingPolicy(10.0), initial_poll_delay=0.5
    )
    settings.update(overrides)
    return EngineConfig(**settings)


def build_engine_world(
    config: Optional[EngineConfig] = None,
    *,
    net_seed: int = 55,
    engine_seed: int = 7,
    with_trace: bool = True,
    realtime_service: bool = False,
    record_times: bool = False,
    link_latency: float = 0.01,
    user: str = DEFAULT_USER,
    slug: str = DEFAULT_SLUG,
) -> EngineWorld:
    """One engine + one service (``ping`` trigger, recording ``record``
    action), published and user-connected, ready for applet installs.

    Seeds are explicit because several suites assert exact retry/poll
    counts whose timing depends on them — wrappers pass their historical
    values rather than relying on the defaults.
    """
    sim = Simulator()
    net = Network(sim, Rng(net_seed))
    trace = Trace() if with_trace else None
    engine = net.add_node(IftttEngine(
        Address("engine.cloud"),
        config=config or default_engine_config(),
        rng=Rng(engine_seed), trace=trace, service_time=0.0,
    ))
    service = net.add_node(PartnerService(
        Address(f"{slug}.cloud"), slug=slug, trace=trace,
        realtime=realtime_service, service_time=0.0,
    ))
    net.connect(engine.address, service.address, FixedLatency(link_latency))
    executed: List[Any] = []
    if record_times:
        recorder = lambda fields: executed.append((sim.now, dict(fields)))  # noqa: E731
    else:
        recorder = lambda fields: executed.append(dict(fields))  # noqa: E731
    service.add_trigger(TriggerEndpoint(slug="ping", name="Ping"))
    service.add_action(ActionEndpoint(slug="record", name="Record", executor=recorder))
    engine.publish_service(service)
    authority = OAuthAuthority(slug)
    authority.register_user(user, "pw")
    engine.connect_service(user, service, authority, "pw")
    return EngineWorld(
        sim=sim, net=net, engine=engine, service=service,
        executed=executed, trace=trace, authority=authority, user=user,
    )


def install_ping_applet(
    engine,
    fields: Optional[Dict[str, str]] = None,
    *,
    user: str = DEFAULT_USER,
    slug: str = DEFAULT_SLUG,
    name: str = "ping -> record",
) -> Applet:
    """Install the canonical ``ping -> record`` applet.

    Works against a plain :class:`IftttEngine` and a
    :class:`~repro.engine.sharding.ShardedEngine` alike (both expose
    ``install_applet``).
    """
    return engine.install_applet(
        user=user,
        name=name,
        trigger=TriggerRef(slug, "ping"),
        action=ActionRef(slug, "record", fields or {"note": "{{n}}"}),
    )
