"""Tests for the fleet workload substrate."""

import pytest

from repro.testbed.workload import FleetResult, run_fleet_experiment


class TestFleetResult:
    def _result(self, poll_times):
        return FleetResult(n_applets=1, publications=1, actions_executed=0,
                           latencies=[], poll_times=poll_times)

    def test_peak_window_counting(self):
        result = self._result([0.0, 0.2, 0.9, 5.0, 5.1])
        assert result.peak_polls_per_second(window=1.0) == 3

    def test_peak_empty(self):
        assert self._result([]).peak_polls_per_second() == 0

    def test_mean_rate(self):
        result = self._result([0.0, 1.0, 2.0, 3.0, 4.0])
        assert result.mean_polls_per_second() == pytest.approx(1.25)

    def test_burstiness_zero_when_no_polls(self):
        assert self._result([]).burstiness() == 0.0

    def test_median_latency(self):
        result = FleetResult(1, 1, 3, latencies=[5.0, 1.0, 9.0], poll_times=[])
        assert result.median_latency() == 5.0


class TestFleetWorld:
    def test_small_fleet_executes_every_applet(self):
        result = run_fleet_experiment(n_applets=20, push=False, publications=2, seed=3)
        assert result.actions_executed == 40
        assert len(result.latencies) == 40

    def test_push_faster_than_poll(self):
        poll = run_fleet_experiment(n_applets=20, push=False, publications=2, seed=3)
        push = run_fleet_experiment(n_applets=20, push=True, publications=2, seed=3)
        assert push.median_latency() < poll.median_latency() / 20

    def test_push_spike_scales_with_fleet(self):
        push = run_fleet_experiment(n_applets=30, push=True, publications=1, seed=4)
        assert push.peak_polls_per_second() >= 25  # near the whole fleet

    def test_poll_spreads_load(self):
        poll = run_fleet_experiment(n_applets=30, push=False, publications=2, seed=4)
        assert poll.peak_polls_per_second() < 15

    def test_world_is_deterministic(self):
        a = run_fleet_experiment(n_applets=10, push=False, publications=1, seed=9)
        b = run_fleet_experiment(n_applets=10, push=False, publications=1, seed=9)
        assert a.latencies == b.latencies
