"""Tests for the LocalEngine (§6 distributed execution) on a real LAN topology."""

import pytest

from repro.engine import ActionRef, Applet, LocalEngine, TriggerRef
from repro.iot import HueHub, HueLamp, WemoSwitch
from repro.net import Address, FixedLatency, Network
from repro.simcore import Rng, Simulator, Trace


@pytest.fixture
def lan():
    sim = Simulator()
    net = Network(sim, Rng(61))
    trace = Trace()
    lamp = net.add_node(HueLamp(Address("lamp.home"), "lamp1", trace=trace))
    hub = net.add_node(HueHub(Address("hub.home"), trace=trace))
    switch = net.add_node(WemoSwitch(Address("wemo.home"), "wemo1", trace=trace))
    local = net.add_node(LocalEngine(Address("tablet.home"), trace=trace))
    net.connect(lamp.address, hub.address, FixedLatency(0.005))
    net.connect(hub.address, local.address, FixedLatency(0.005))
    net.connect(switch.address, local.address, FixedLatency(0.005))
    hub.pair_lamp(lamp)
    local.bridge_hue_hub(hub.address)
    local.bridge_wemo(switch.address)
    sim.run()
    return sim, trace, lamp, hub, switch, local


def a2_applet():
    return Applet(
        applet_id=1, name="A2 local", user="alice",
        trigger=TriggerRef("wemo", "switch_activated", {"device_id": "wemo1"}),
        action=ActionRef("philips_hue", "turn_on_lights", {"lamp_id": "lamp1"}),
    )


def wemo_on_matcher(event):
    if event.get("device_id") == "wemo1" and event.get("state", {}).get("on") is True:
        return {"device_id": "wemo1"}
    return None


class TestLocalEngine:
    def test_local_execution_is_milliseconds(self, lan):
        sim, trace, lamp, hub, switch, local = lan
        applet = a2_applet()
        local.install_local_applet(applet, wemo_on_matcher, local.hue_command("lamp1"))
        t0 = sim.now
        switch.press()
        sim.run()
        assert lamp.get_state("on") is True
        on_events = [r for r in trace.query(kind="device_state_changed", source="lamp1")
                     if r.get("key") == "on"]
        latency = on_events[0].time - t0
        assert latency < 0.1  # LAN hops only, no polling
        assert applet.executions == 1
        assert local.executions == 1

    def test_non_matching_event_ignored(self, lan):
        sim, _, lamp, _, switch, local = lan
        local.install_local_applet(a2_applet(), wemo_on_matcher, local.hue_command("lamp1"))
        switch.press()   # on -> matches
        sim.run()
        lamp.apply_command({"on": False}, cause="reset")
        switch.press()   # off -> no match
        sim.run()
        assert lamp.get_state("on") is False

    def test_disabled_applet_skipped(self, lan):
        sim, _, lamp, _, switch, local = lan
        from repro.engine import AppletState

        applet = a2_applet()
        local.install_local_applet(applet, wemo_on_matcher, local.hue_command("lamp1"))
        applet.state = AppletState.DISABLED
        switch.press()
        sim.run()
        assert lamp.get_state("on") is False

    def test_offline_engine_drops_events(self, lan):
        sim, _, lamp, _, switch, local = lan
        local.install_local_applet(a2_applet(), wemo_on_matcher, local.hue_command("lamp1"))
        local.online = False
        switch.press()
        sim.run()
        assert lamp.get_state("on") is False
        assert local.executions == 0

    def test_hue_command_requires_bridged_hub(self):
        sim = Simulator()
        net = Network(sim, Rng(1))
        local = net.add_node(LocalEngine(Address("tablet.home")))
        executor = local.hue_command("lamp1")
        with pytest.raises(RuntimeError):
            executor({"on": True})

    def test_local_applets_listing(self, lan):
        _, _, _, _, _, local = lan
        applet = a2_applet()
        local.install_local_applet(applet, wemo_on_matcher, lambda fields: None)
        assert local.local_applets == [applet]

    def test_hub_event_route_also_works(self, lan):
        """Events arriving via the hub's HTTP push (Hue path) execute too."""
        sim, _, lamp, hub, _, local = lan

        def lamp_off_matcher(event):
            if event.get("device_id") == "lamp1" and event.get("state", {}).get("on") is False:
                return {}
            return None

        seen = []
        applet = Applet(
            applet_id=2, name="mirror", user="alice",
            trigger=TriggerRef("philips_hue", "light_turned_off"),
            action=ActionRef("local", "log"),
        )
        local.install_local_applet(applet, lamp_off_matcher, lambda fields: seen.append(fields))
        lamp.apply_command({"on": True}, cause="test")
        sim.run()
        lamp.apply_command({"on": False}, cause="test")
        sim.run()
        assert seen == [{}]
