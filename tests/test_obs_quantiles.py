"""Property-based accuracy tests for the streaming-quantile sketches.

Driven by the seeded :class:`~repro.simcore.rng.Rng` (no external
property-testing dependency): each property is checked across a grid of
seeds, distributions, and quantile points, asserting the sketch stays
within the error bounds documented in ``repro.obs.quantiles`` — rank
error at most :data:`~repro.obs.quantiles.P2_RANK_ERROR_BOUND` against
the exact :func:`~repro.simcore.rng.quantiles` of the same sample.
"""

import pytest

from repro.obs import (
    P2Quantile,
    P2_RANK_ERROR_BOUND,
    QuantileSketch,
    ReservoirSample,
    rank_error,
)
from repro.simcore.rng import Rng, quantiles as exact_quantiles

QUANTILE_POINTS = (0.5, 0.9, 0.95, 0.99)
SEEDS = (7, 21, 1234)
N = 3000


def _stream(kind: str, seed: int, n: int = N):
    """Deterministic sample streams, including adversarial orderings."""
    rng = Rng(seed=seed, name=f"stream-{kind}")
    if kind == "lognormal":
        return [rng.lognormal_median(90.0, 0.5) for _ in range(n)]
    if kind == "exponential":
        return [rng.exponential(15.0) for _ in range(n)]
    if kind == "uniform":
        return [rng.uniform(0.0, 500.0) for _ in range(n)]
    if kind == "sorted":
        return sorted(rng.lognormal_median(90.0, 0.5) for _ in range(n))
    if kind == "reverse_sorted":
        return sorted((rng.exponential(15.0) for _ in range(n)), reverse=True)
    raise ValueError(kind)


DISTRIBUTIONS = ("lognormal", "exponential", "uniform", "sorted")


class TestP2Properties:
    @pytest.mark.parametrize("dist", DISTRIBUTIONS)
    @pytest.mark.parametrize("q", QUANTILE_POINTS)
    def test_rank_error_within_documented_bound(self, dist, q):
        for seed in SEEDS:
            values = _stream(dist, seed)
            sketch = P2Quantile(q)
            for v in values:
                sketch.observe(v)
            err = rank_error(values, sketch.value(), q)
            assert err <= P2_RANK_ERROR_BOUND, (
                f"{dist} seed={seed} q={q}: rank error {err:.4f} "
                f"exceeds {P2_RANK_ERROR_BOUND}"
            )

    @pytest.mark.parametrize("q", QUANTILE_POINTS)
    def test_close_to_exact_quantiles_on_lognormal(self, q):
        # Value-space check on a smooth distribution: within 10% of the
        # exact linear-interpolation quantile at n=3000.
        for seed in SEEDS:
            values = _stream("lognormal", seed)
            sketch = P2Quantile(q)
            for v in values:
                sketch.observe(v)
            exact = exact_quantiles(values, [q])[0]
            assert sketch.value() == pytest.approx(exact, rel=0.10)

    def test_reverse_sorted_is_a_known_weakness(self):
        # P2's five markers are seeded from the first five observations;
        # on a strictly DECREASING stream those are the largest values and
        # low/mid quantile markers never fully recover (rank error can
        # reach ~0.7).  The estimate still stays inside the observed
        # range, and the order-insensitive reservoir sketch holds the
        # documented bound on the very same stream — which is why the
        # registry keeps both.
        for seed in SEEDS:
            values = _stream("reverse_sorted", seed)
            p2 = P2Quantile(0.5)
            reservoir = ReservoirSample(capacity=1024, seed=seed)
            for v in values:
                p2.observe(v)
                reservoir.observe(v)
            assert min(values) <= p2.value() <= max(values)
            assert rank_error(values, reservoir.quantile(0.5), 0.5) <= (
                P2_RANK_ERROR_BOUND
            )

    def test_estimate_stays_within_observed_range(self):
        for seed in SEEDS:
            values = _stream("exponential", seed)
            sketch = P2Quantile(0.95)
            for v in values:
                sketch.observe(v)
            assert min(values) <= sketch.value() <= max(values)

    def test_exact_below_five_observations(self):
        sketch = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            sketch.observe(v)
        assert sketch.value() == pytest.approx(2.0)

    def test_empty_sketch_raises(self):
        with pytest.raises(ValueError):
            P2Quantile(0.5).value()

    def test_invalid_quantile_rejected(self):
        for bad in (0.0, 1.0, -0.2, 1.5):
            with pytest.raises(ValueError):
                P2Quantile(bad)

    def test_constant_stream_is_exact(self):
        sketch = P2Quantile(0.9)
        for _ in range(500):
            sketch.observe(42.0)
        assert sketch.value() == pytest.approx(42.0)

    def test_deterministic_for_identical_streams(self):
        values = _stream("lognormal", 7)
        first, second = P2Quantile(0.95), P2Quantile(0.95)
        for v in values:
            first.observe(v)
            second.observe(v)
        assert first.value() == second.value()


class TestQuantileSketch:
    def test_tracks_all_points_with_one_observe(self):
        values = _stream("uniform", 21)
        sketch = QuantileSketch(QUANTILE_POINTS)
        for v in values:
            sketch.observe(v)
        estimates = sketch.values()
        assert set(estimates) == set(QUANTILE_POINTS)
        for q, estimate in estimates.items():
            assert rank_error(values, estimate, q) <= P2_RANK_ERROR_BOUND
        # Quantile estimates must be monotone in q.
        ordered = [estimates[q] for q in sorted(estimates)]
        assert ordered == sorted(ordered)

    def test_untracked_point_raises(self):
        sketch = QuantileSketch((0.5,))
        sketch.observe(1.0)
        with pytest.raises(KeyError):
            sketch.quantile(0.99)

    def test_empty_values_dict(self):
        assert QuantileSketch().values() == {}


class TestReservoir:
    @pytest.mark.parametrize("dist", ("lognormal", "sorted"))
    def test_rank_error_within_bound_at_1024(self, dist):
        for seed in SEEDS:
            values = _stream(dist, seed)
            reservoir = ReservoirSample(capacity=1024, seed=seed)
            for v in values:
                reservoir.observe(v)
            for q in QUANTILE_POINTS:
                assert rank_error(values, reservoir.quantile(q), q) <= 0.05

    def test_small_streams_kept_exactly(self):
        reservoir = ReservoirSample(capacity=100, seed=1)
        values = [float(v) for v in range(50)]
        for v in values:
            reservoir.observe(v)
        assert sorted(reservoir.sample) == values
        assert reservoir.count == 50

    def test_merge_counts_and_capacity(self):
        a = ReservoirSample(capacity=64, seed=1)
        b = ReservoirSample(capacity=64, seed=2)
        for v in _stream("exponential", 7, n=500):
            a.observe(v)
        for v in _stream("uniform", 8, n=700):
            b.observe(v)
        merged = a.merge(b)
        assert merged.count == 1200
        assert len(merged.sample) <= merged.capacity

    def test_merged_quantiles_reflect_union(self):
        # Two disjoint ranges: the median of the union must land between
        # them, not inside either input's bulk.
        low = ReservoirSample(capacity=256, seed=3)
        high = ReservoirSample(capacity=256, seed=4)
        for v in range(1000):
            low.observe(float(v % 10))          # values in [0, 10)
            high.observe(1000.0 + float(v % 10))  # values in [1000, 1010)
        merged = low.merge(high)
        assert 5.0 <= merged.quantile(0.5) <= 1005.0
        assert merged.quantile(0.05) < 10.0
        assert merged.quantile(0.95) > 1000.0
