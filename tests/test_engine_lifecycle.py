"""Tests for applet uninstall, engine stats, and corpus persistence."""

import pytest

from repro.engine import ActionRef, EngineConfig, FixedPollingPolicy, IftttEngine, TriggerRef
from repro.engine.oauth import OAuthAuthority
from repro.ecosystem.corpus import Corpus
from repro.net import Address, FixedLatency, Network
from repro.services import ActionEndpoint, PartnerService, TriggerEndpoint
from repro.simcore import Rng, Simulator


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, Rng(81))
    engine = net.add_node(IftttEngine(
        Address("engine.cloud"),
        config=EngineConfig(poll_policy=FixedPollingPolicy(5.0), initial_poll_delay=0.5),
        rng=Rng(2), service_time=0.0,
    ))
    service = net.add_node(PartnerService(Address("svc.cloud"), slug="svc", service_time=0.0))
    net.connect(engine.address, service.address, FixedLatency(0.01))
    executed = []
    service.add_trigger(TriggerEndpoint(slug="t", name="T"))
    service.add_action(ActionEndpoint(slug="a", name="A", executor=executed.append))
    engine.publish_service(service)
    authority = OAuthAuthority("svc")
    authority.register_user("u", "pw")
    engine.connect_service("u", service, authority, "pw")
    return sim, engine, service, executed


def install(engine):
    return engine.install_applet(user="u", name="p",
                                 trigger=TriggerRef("svc", "t"),
                                 action=ActionRef("svc", "a"))


class TestUninstall:
    def test_uninstall_stops_polling_and_execution(self, world):
        sim, engine, service, executed = world
        applet = install(engine)
        sim.run_until(2.0)
        engine.uninstall_applet(applet.applet_id)
        service.ingest_event("t", {"n": 1})
        sim.run_until(60.0)
        assert executed == []
        assert engine.applets == []

    def test_uninstall_unknown_rejected(self, world):
        _, engine, _, _ = world
        with pytest.raises(KeyError):
            engine.uninstall_applet(999)

    def test_uninstall_returns_disabled_applet(self, world):
        sim, engine, _, _ = world
        applet = install(engine)
        returned = engine.uninstall_applet(applet.applet_id)
        assert returned is applet
        assert not applet.enabled

    def test_identity_mapping_cleaned(self, world):
        sim, engine, service, _ = world
        applet = install(engine)
        identity = applet.trigger_identity
        engine.uninstall_applet(applet.applet_id)
        assert identity not in engine._by_identity

    def test_sibling_identity_survives_uninstall(self, world):
        """Two installs of the same (user, trigger, fields) with different
        applet ids have distinct identities; removing one leaves the other."""
        sim, engine, service, executed = world
        first = install(engine)
        second = install(engine)
        sim.run_until(2.0)
        engine.uninstall_applet(first.applet_id)
        service.ingest_event("t", {"n": 1})
        sim.run_until(30.0)
        assert len(executed) == 1  # the surviving applet executed


class TestEngineStats:
    def test_stats_snapshot(self, world):
        sim, engine, service, _ = world
        install(engine)
        sim.run_until(12.0)
        stats = engine.stats()
        assert stats["services"] == 1
        assert stats["applets"] == 1
        assert stats["applets_enabled"] == 1
        assert stats["polls_sent"] == engine.polls_sent > 0
        assert stats["actions_dispatched"] == 0

    def test_stats_reflect_disable(self, world):
        sim, engine, _, _ = world
        applet = install(engine)
        engine.disable_applet(applet.applet_id)
        assert engine.stats()["applets_enabled"] == 0


class TestCorpusPersistence:
    def test_round_trip_preserves_summary(self, small_corpus, tmp_path):
        path = tmp_path / "corpus.json"
        small_corpus.save(path)
        loaded = Corpus.load(path)
        assert loaded.summary() == small_corpus.summary()
        assert loaded.summary(0) == small_corpus.summary(0)

    def test_round_trip_preserves_records(self, small_corpus, tmp_path):
        path = tmp_path / "corpus.json"
        small_corpus.save(path)
        loaded = Corpus.load(path)
        alexa = loaded.service("amazon_alexa")
        assert alexa.name == "Amazon Alexa"
        assert [t.name for t in alexa.triggers] == [
            t.name for t in small_corpus.service("amazon_alexa").triggers
        ]
        applet_id = next(iter(small_corpus.applets))
        assert vars(loaded.applet(applet_id)) == vars(small_corpus.applet(applet_id))
