"""Integration tests for queries, conditions, and multi-action applets."""

import pytest

from repro.engine import (
    ActionRef,
    EngineConfig,
    FilterSyntaxError,
    FixedPollingPolicy,
    IftttEngine,
    QueryRef,
    TriggerRef,
)
from repro.engine.oauth import OAuthAuthority
from repro.net import Address, FixedLatency, Network
from repro.services import ActionEndpoint, PartnerService, QueryEndpoint, TriggerEndpoint
from repro.simcore import Rng, Simulator, Trace


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, Rng(71))
    trace = Trace()
    engine = net.add_node(IftttEngine(
        Address("engine.cloud"),
        config=EngineConfig(poll_policy=FixedPollingPolicy(10.0), initial_poll_delay=0.5),
        rng=Rng(5), trace=trace, service_time=0.0,
    ))
    service = net.add_node(PartnerService(Address("svc.cloud"), slug="svc",
                                          trace=trace, service_time=0.0))
    net.connect(engine.address, service.address, FixedLatency(0.01))
    state = {"temperature": 20.0, "recorded": [], "notified": []}
    service.add_trigger(TriggerEndpoint(
        slug="reading", name="New reading",
        ingredients=lambda event: {"value": event.get("value", 0)},
    ))
    service.add_action(ActionEndpoint(
        slug="record", name="Record",
        executor=lambda fields: state["recorded"].append(dict(fields))))
    service.add_action(ActionEndpoint(
        slug="notify", name="Notify",
        executor=lambda fields: state["notified"].append(dict(fields))))
    service.add_query(QueryEndpoint(
        slug="thermostat", name="Current temperature",
        executor=lambda fields: [{"temperature": state["temperature"]}]))
    engine.publish_service(service)
    authority = OAuthAuthority("svc")
    authority.register_user("alice", "pw")
    engine.connect_service("alice", service, authority, "pw")
    return sim, engine, service, state


class TestConditions:
    def test_filter_gates_action(self, world):
        sim, engine, service, state = world
        engine.install_applet(
            user="alice", name="record big readings",
            trigger=TriggerRef("svc", "reading"),
            action=ActionRef("svc", "record", {"v": "{{value}}"}),
            filter_code="trigger.value > 10",
        )
        sim.run_until(2.0)
        service.ingest_event("reading", {"value": 5})
        service.ingest_event("reading", {"value": 50})
        sim.run_until(30.0)
        assert [f["v"] for f in state["recorded"]] == ["50"]
        assert engine.filter_skips == 1

    def test_invalid_filter_rejected_at_install(self, world):
        sim, engine, _, _ = world
        with pytest.raises(FilterSyntaxError):
            engine.install_applet(
                user="alice", name="bad",
                trigger=TriggerRef("svc", "reading"),
                action=ActionRef("svc", "record"),
                filter_code="trigger.value >",
            )

    def test_filter_eval_error_skips_and_counts(self, world):
        sim, engine, service, state = world
        engine.install_applet(
            user="alice", name="broken filter",
            trigger=TriggerRef("svc", "reading"),
            action=ActionRef("svc", "record"),
            filter_code="trigger.nonexistent > 1",
        )
        sim.run_until(2.0)
        service.ingest_event("reading", {"value": 1})
        sim.run_until(30.0)
        assert state["recorded"] == []
        assert engine.filter_errors == 1

    def test_filter_trace_records(self, world):
        sim, engine, service, _ = world
        engine.install_applet(
            user="alice", name="gated",
            trigger=TriggerRef("svc", "reading"),
            action=ActionRef("svc", "record"),
            filter_code="trigger.value > 100",
        )
        sim.run_until(2.0)
        service.ingest_event("reading", {"value": 1})
        sim.run_until(30.0)
        assert engine.trace.query(kind="engine_filter_skipped")


class TestQueries:
    def test_query_results_feed_filter(self, world):
        sim, engine, service, state = world
        engine.install_applet(
            user="alice", name="record only when cold",
            trigger=TriggerRef("svc", "reading"),
            action=ActionRef("svc", "record", {"v": "{{value}}"}),
            queries=(QueryRef("svc", "thermostat"),),
            filter_code="queries.thermostat.temperature < 25",
        )
        sim.run_until(2.0)
        service.ingest_event("reading", {"value": 1})   # temp 20 -> passes
        sim.run_until(30.0)
        state["temperature"] = 30.0
        service.ingest_event("reading", {"value": 2})   # temp 30 -> filtered
        sim.run_until(60.0)
        assert engine.queries_sent == 2
        assert [f["v"] for f in state["recorded"]] == ["1"]
        assert engine.filter_skips == 1

    def test_query_row_values_usable(self, world):
        """Filters can't index lists, so services return single-row data
        the engine exposes as queries.<slug>; compare against row dicts
        via a scalar-returning query wrapper."""
        sim, engine, service, state = world
        # a scalar-friendly query: single row, single field is accessible
        # through the standard namespace as queries.thermostat (a list);
        # filters operate on it via 'contains'-free comparisons only when
        # the service returns scalars, so expose a scalar query:
        service.add_query(QueryEndpoint(
            slug="temp_scalar", name="Temperature scalar",
            executor=lambda fields: {"temperature": state["temperature"]}))
        engine.install_applet(
            user="alice", name="hot gate",
            trigger=TriggerRef("svc", "reading"),
            action=ActionRef("svc", "record"),
            queries=(QueryRef("svc", "temp_scalar"),),
        )
        sim.run_until(2.0)
        service.ingest_event("reading", {"value": 2})
        sim.run_until(30.0)
        assert state["recorded"]  # no filter: queries ran, action fired

    def test_query_failure_yields_empty_rows(self, world):
        sim, engine, service, state = world
        engine.install_applet(
            user="alice", name="query 404",
            trigger=TriggerRef("svc", "reading"),
            action=ActionRef("svc", "record"),
            queries=(QueryRef("svc", "no_such_query"),),
        )
        sim.run_until(2.0)
        service.ingest_event("reading", {"value": 2})
        sim.run_until(30.0)
        assert engine.query_failures == 1
        assert state["recorded"]  # action still runs without a filter

    def test_unpublished_query_service_rejected(self, world):
        sim, engine, _, _ = world
        with pytest.raises(KeyError):
            engine.install_applet(
                user="alice", name="bad query svc",
                trigger=TriggerRef("svc", "reading"),
                action=ActionRef("svc", "record"),
                queries=(QueryRef("ghost", "q"),),
            )


class TestMultiAction:
    def test_both_actions_execute_per_event(self, world):
        sim, engine, service, state = world
        engine.install_applet(
            user="alice", name="record and notify",
            trigger=TriggerRef("svc", "reading"),
            action=ActionRef("svc", "record", {"v": "{{value}}"}),
            extra_actions=(ActionRef("svc", "notify", {"v": "{{value}}"}),),
        )
        sim.run_until(2.0)
        service.ingest_event("reading", {"value": 9})
        sim.run_until(30.0)
        assert [f["v"] for f in state["recorded"]] == ["9"]
        assert [f["v"] for f in state["notified"]] == ["9"]

    def test_multi_action_executes_simultaneously(self, world):
        """Unlike §4's two-applet workaround (Figure 7's ±minutes
        divergence), one multi-action applet dispatches all actions from
        the same poll — simultaneously up to network jitter."""
        sim, engine, service, state = world
        trace = engine.trace
        engine.install_applet(
            user="alice", name="simultaneous",
            trigger=TriggerRef("svc", "reading"),
            action=ActionRef("svc", "record"),
            extra_actions=(ActionRef("svc", "notify"),),
        )
        sim.run_until(2.0)
        service.ingest_event("reading", {"value": 1})
        sim.run_until(30.0)
        sent = trace.times("engine_action_sent")
        assert len(sent) == 2
        assert abs(sent[0] - sent[1]) < 0.01

    def test_filter_gates_all_actions(self, world):
        sim, engine, service, state = world
        engine.install_applet(
            user="alice", name="gated pair",
            trigger=TriggerRef("svc", "reading"),
            action=ActionRef("svc", "record"),
            extra_actions=(ActionRef("svc", "notify"),),
            filter_code="trigger.value > 100",
        )
        sim.run_until(2.0)
        service.ingest_event("reading", {"value": 1})
        sim.run_until(30.0)
        assert state["recorded"] == [] and state["notified"] == []
