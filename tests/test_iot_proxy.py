"""Direct tests for the local proxy's command handling and edge cases."""

import pytest

from repro.iot import HueHub, HueLamp, LocalProxy, SmartThingsHub, GenericDevice, WemoSwitch
from repro.net import Address, FixedLatency, HttpNode, Network
from repro.simcore import Rng, Simulator, Trace


@pytest.fixture
def lan():
    sim = Simulator()
    net = Network(sim, Rng(53))
    trace = Trace()
    server = net.add_node(HttpNode(Address("server.cloud")))
    server.add_route("POST", "/proxy/event", lambda req: {"confirmed": True})
    proxy = net.add_node(LocalProxy(Address("proxy.home"),
                                    service_server=server.address, trace=trace))
    net.connect(proxy.address, server.address, FixedLatency(0.05))
    return sim, net, trace, proxy, server


class TestCommandValidation:
    def _command(self, sim, net, proxy, body):
        client = net.add_node(HttpNode(Address(f"client{id(body)}.cloud")))
        net.connect(client.address, proxy.address, FixedLatency(0.01))
        got = []
        client.post(proxy.address, "/proxy/command", body=body, on_response=got.append)
        sim.run_until(sim.now + 2.0)
        return got[0]

    def test_unknown_target_400(self, lan):
        sim, net, _, proxy, _ = lan
        response = self._command(sim, net, proxy, {"target": "toaster"})
        assert response.status == 400

    def test_hue_without_bridge_503(self, lan):
        sim, net, _, proxy, _ = lan
        response = self._command(
            sim, net, proxy, {"target": "hue", "lamp_id": "l", "command": {"on": True}}
        )
        assert response.status == 503

    def test_wemo_without_bridge_503(self, lan):
        sim, net, _, proxy, _ = lan
        response = self._command(
            sim, net, proxy, {"target": "wemo", "device_id": "w", "on": True}
        )
        assert response.status == 503

    def test_smartthings_without_bridge_503(self, lan):
        sim, net, _, proxy, _ = lan
        response = self._command(
            sim, net, proxy, {"target": "smartthings", "device_id": "d", "value": True}
        )
        assert response.status == 503


class TestBridgedOperation:
    def test_full_bridge_roundtrip(self, lan):
        sim, net, trace, proxy, _ = lan
        lamp = net.add_node(HueLamp(Address("lamp.home"), "lamp1"))
        hub = net.add_node(HueHub(Address("hub.home")))
        switch = net.add_node(WemoSwitch(Address("wemo.home"), "wemo1"))
        st_hub = net.add_node(SmartThingsHub(Address("st.home")))
        lock = net.add_node(GenericDevice(Address("lock.home"), "lock1", "lock"))
        for a, b in ((lamp, hub), (hub, proxy), (switch, proxy), (st_hub, proxy), (lock, st_hub)):
            net.connect(a.address, b.address, FixedLatency(0.01))
        hub.pair_lamp(lamp)
        st_hub.pair_device(lock)
        proxy.bridge_hue_hub(hub.address)
        proxy.bridge_wemo("wemo1", switch.address)
        proxy.bridge_smartthings_hub(st_hub.address)
        sim.run_until(sim.now + 1.0)

        client = net.add_node(HttpNode(Address("client.cloud")))
        net.connect(client.address, proxy.address, FixedLatency(0.01))
        client.post(proxy.address, "/proxy/command",
                    body={"target": "hue", "lamp_id": "lamp1", "command": {"on": True}})
        client.post(proxy.address, "/proxy/command",
                    body={"target": "wemo", "device_id": "wemo1", "on": True})
        client.post(proxy.address, "/proxy/command",
                    body={"target": "smartthings", "device_id": "lock1", "value": True})
        sim.run_until(sim.now + 2.0)
        assert lamp.get_state("on") is True
        assert switch.get_state("on") is True
        assert lock.get_state("locked") is True
        assert proxy.commands_executed == 3
        assert trace.query(kind="proxy_command")

    def test_events_forwarded_with_confirmation(self, lan):
        sim, net, trace, proxy, server = lan
        switch = net.add_node(WemoSwitch(Address("wemo.home"), "wemo1"))
        net.connect(switch.address, proxy.address, FixedLatency(0.01))
        proxy.bridge_wemo("wemo1", switch.address)
        sim.run_until(sim.now + 1.0)
        switch.press()
        sim.run_until(sim.now + 2.0)
        assert proxy.events_forwarded == 1
        observed = trace.times("proxy_observed_event")
        confirmed = trace.times("proxy_confirmed")
        assert len(observed) == len(confirmed) == 1
        # confirmation follows observation by the WAN round trip
        assert 0.05 < confirmed[0] - observed[0] < 1.0

    def test_confirm_failure_traced_when_server_down(self, lan):
        sim, net, trace, proxy, server = lan
        switch = net.add_node(WemoSwitch(Address("wemo.home"), "wemo1"))
        net.connect(switch.address, proxy.address, FixedLatency(0.01))
        proxy.bridge_wemo("wemo1", switch.address)
        sim.run_until(sim.now + 1.0)
        net.set_link_state(proxy.address, server.address, up=False)
        switch.press()
        sim.run_until(sim.now + 15.0)
        assert trace.query(kind="proxy_confirm_failed")
