"""End-to-end pipeline integrity: generate → serve → crawl → archive →
reload → analyze must be lossless at every hop."""

import pytest

from repro.analysis import (
    ServiceClassifier,
    add_count_top_shares,
    iot_shares,
    table1,
)
from repro.crawler import IftttCrawler, SnapshotStore
from repro.ecosystem import EcosystemGenerator, EcosystemParams
from repro.ecosystem.corpus import Corpus
from repro.frontend import SimulatedIftttSite


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """The full §3 pipeline with a save/load hop in the middle."""
    tmp = tmp_path_factory.mktemp("pipeline")
    corpus = EcosystemGenerator(EcosystemParams(scale=0.01, seed=7)).generate()

    corpus_path = tmp / "corpus.json"
    corpus.save(corpus_path)
    reloaded = Corpus.load(corpus_path)

    site = SimulatedIftttSite(reloaded)
    crawler = IftttCrawler(site)
    store = SnapshotStore()
    for week in (0, 24):
        store.add(crawler.crawl(week=week))
    store_path = tmp / "snapshots.json"
    store.save(store_path)
    restored = SnapshotStore.load(store_path)
    return corpus, reloaded, store, restored


class TestLossless:
    def test_corpus_save_load_identity(self, pipeline):
        corpus, reloaded, _, _ = pipeline
        for week in (None, 0, 12, 24):
            assert reloaded.summary(week) == corpus.summary(week)

    def test_crawl_of_reloaded_matches_original_truth(self, pipeline):
        corpus, _, store, _ = pipeline
        assert store.last().summary() == corpus.summary()

    def test_store_save_load_identity(self, pipeline):
        _, _, store, restored = pipeline
        assert restored.weeks() == store.weeks()
        for week in store.weeks():
            assert restored.get(week).summary() == store.get(week).summary()

    def test_analyses_identical_after_round_trips(self, pipeline):
        _, _, store, restored = pipeline
        original_rows = table1(store.last())
        restored_rows = table1(restored.last())
        assert original_rows == restored_rows
        assert iot_shares(store.last()) == iot_shares(restored.last())
        assert add_count_top_shares(store.last()) == add_count_top_shares(restored.last())

    def test_classifier_stable_across_round_trip(self, pipeline):
        corpus, _, store, restored = pipeline
        classifier = ServiceClassifier()
        original = classifier.classify_all(store.last().services.values())
        reloaded = classifier.classify_all(restored.last().services.values())
        assert original == reloaded
        truth = {s.slug: s.category_index for s in corpus.services_at()}
        assert classifier.accuracy(restored.last().services.values(), truth) > 0.9
