"""Direct tests for "Our Service" (the custom partner service)."""

import pytest

from repro.iot import AlexaCloud, HueHub, HueLamp, LocalProxy, WemoSwitch
from repro.net import Address, FixedLatency, Network
from repro.services import CustomService
from repro.simcore import Rng, Simulator, Trace
from repro.webapps import Gmail, GoogleDrive, GoogleSheets


@pytest.fixture
def home():
    """Custom service + proxy + devices + web apps on one network."""
    sim = Simulator()
    net = Network(sim, Rng(47))
    trace = Trace()
    lamp = net.add_node(HueLamp(Address("lamp.home"), "lamp1", trace=trace))
    hub = net.add_node(HueHub(Address("hub.home"), trace=trace))
    switch = net.add_node(WemoSwitch(Address("wemo.home"), "wemo1", trace=trace))
    service = net.add_node(CustomService(Address("our.cloud"), trace=trace))
    proxy = net.add_node(LocalProxy(Address("proxy.home"),
                                    service_server=service.address, trace=trace))
    gmail = net.add_node(Gmail(Address("gmail.cloud"), service_time=0.0))
    sheets = net.add_node(GoogleSheets(Address("sheets.cloud"), service_time=0.0))
    drive = net.add_node(GoogleDrive(Address("drive.cloud"), service_time=0.0))
    for a, b in ((lamp, hub), (hub, proxy), (switch, proxy), (proxy, service),
                 (service, gmail), (service, sheets), (service, drive)):
        net.connect(a.address, b.address, FixedLatency(0.01))
    hub.pair_lamp(lamp)
    proxy.bridge_hue_hub(hub.address)
    proxy.bridge_wemo("wemo1", switch.address)
    service.proxy = proxy.address
    service.connect_gmail(gmail.address, "me@g", poll_interval=5.0)
    service.connect_sheets(sheets.address)
    service.connect_drive(drive.address)
    # the gmail poll loop runs forever: always advance by bounded time
    sim.run_until(1.0)
    return sim, trace, lamp, hub, switch, proxy, service, gmail, sheets, drive


class TestProxyEventPath:
    def test_wemo_press_reaches_service(self, home):
        sim, _, _, _, switch, proxy, service, _, _, _ = home
        service.register_identity("wemo_activated", "id-w", {})
        switch.press()
        sim.run_until(sim.now + 5.0)
        assert proxy.events_forwarded >= 1
        assert len(service.buffer_for("id-w")) == 1

    def test_proxy_confirmation_traced(self, home):
        sim, trace, _, _, switch, _, service, _, _, _ = home
        switch.press()
        sim.run_until(sim.now + 5.0)
        assert trace.query(kind="proxy_observed_event")
        assert trace.query(kind="proxy_confirmed")

    def test_hue_event_via_proxy(self, home):
        sim, _, lamp, hub, _, _, service, _, _, _ = home
        service.register_identity("hue_light_on", "id-h", {})
        hub.command_lamp("lamp1", {"on": True})
        sim.run_until(sim.now + 5.0)
        assert len(service.buffer_for("id-h")) == 1


class TestProxyActionPath:
    def test_turn_on_hue_via_proxy(self, home):
        sim, _, lamp, _, _, _, service, _, _, _ = home
        service.action("turn_on_hue").executor({"lamp_id": "lamp1"})
        sim.run_until(sim.now + 5.0)
        assert lamp.get_state("on") is True

    def test_blink_with_color_field(self, home):
        sim, _, lamp, _, _, _, service, _, _, _ = home
        service.action("blink_hue").executor({"lamp_id": "lamp1", "color": "red"})
        sim.run_until(sim.now + 5.0)
        assert lamp.get_state("effect") == "blink"
        assert lamp.get_state("color") == "red"

    def test_activate_wemo_via_proxy(self, home):
        sim, _, _, _, switch, _, service, _, _, _ = home
        service.action("activate_wemo").executor({"device_id": "wemo1"})
        sim.run_until(sim.now + 5.0)
        assert switch.get_state("on") is True

    def test_missing_proxy_raises(self):
        service = CustomService(Address("lonely.cloud"))
        with pytest.raises(RuntimeError):
            service._proxy_hue({"lamp_id": "l"}, {"on": True})


class TestWebAppPaths:
    def test_gmail_polling(self, home):
        sim, _, _, _, _, _, service, gmail, _, _ = home
        service.register_identity("gmail_new_email", "id-m", {})
        gmail.deliver_email("me@g", "s@x", "subject one")
        sim.run_until(sim.now + 10.0)
        assert len(service.buffer_for("id-m")) == 1

    def test_add_row_action(self, home):
        sim, _, _, _, _, _, service, _, sheets, _ = home
        service.action("add_row").executor({"sheet": "s", "row": "data"})
        sim.run_until(sim.now + 5.0)
        assert sheets.rows("s") == [["data"]]

    def test_upload_action(self, home):
        sim, _, _, _, _, _, service, _, _, drive = home
        service.action("upload_file").executor({"user": "me", "name": "f.bin"})
        sim.run_until(sim.now + 5.0)
        assert drive.files("me")[0].name == "f.bin"

    def test_send_email_action(self, home):
        sim, _, _, _, _, _, service, gmail, _, _ = home
        service.action("send_email").executor({"to": "you@g", "subject": "yo"})
        sim.run_until(sim.now + 5.0)
        assert gmail.inbox("you@g")[0].subject == "yo"

    def test_unwired_webapp_actions_raise(self):
        service = CustomService(Address("lonely.cloud"))
        with pytest.raises(RuntimeError):
            service._add_row({"sheet": "s"})
        with pytest.raises(RuntimeError):
            service._upload_file({})
        with pytest.raises(RuntimeError):
            service._send_email({})


class TestHostedAlexa:
    def test_hosted_alexa_intents(self, home):
        sim, _, _, _, _, _, service, _, _, _ = home
        net = service.network
        cloud = net.add_node(AlexaCloud(Address("alexa.cloud")))
        net.connect(cloud.address, service.address, FixedLatency(0.01))
        service.host_alexa(cloud.address)
        sim.run_until(sim.now + 5.0)
        service.register_identity("alexa_phrase", "id-p", {})
        service.register_identity("alexa_song_played", "id-s", {})
        # simulate a parsed intent push
        service.ingest_event("alexa_phrase", {"intent": "say_phrase", "phrase": "x"})
        service.ingest_event("alexa_song_played", {"intent": "song_played", "song": "y"})
        assert len(service.buffer_for("id-p")) == 1
        assert len(service.buffer_for("id-s")) == 1
