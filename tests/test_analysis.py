"""Tests for the §3.2 analysis layer against the crawled small corpus."""

import pytest

from repro.analysis import (
    ServiceClassifier,
    UR_ET_AL_DATASET,
    add_count_top_shares,
    growth_percentages,
    heatmap_intensity,
    interaction_heatmap,
    iot_shares,
    log_rank_series,
    ranked_add_counts,
    table1,
    table2,
    table3,
    user_contribution_stats,
    weekly_series,
)
from repro.analysis.growthstats import monotonically_growing
from repro.analysis.heatmap import col_sums, render_ascii, row_sums
from repro.ecosystem.categories import CATEGORIES


@pytest.fixture(scope="module")
def truth(small_corpus):
    return {s.slug: s.category_index for s in small_corpus.services_at()}


class TestClassifier:
    def test_high_accuracy_on_corpus(self, small_snapshot, truth):
        clf = ServiceClassifier()
        assert clf.accuracy(small_snapshot.services.values(), truth) > 0.9

    def test_anchor_services_classified_correctly(self, small_snapshot):
        clf = ServiceClassifier()
        assert clf.classify(small_snapshot.services["amazon_alexa"]) == 1
        assert clf.classify(small_snapshot.services["fitbit"]) == 3
        assert clf.classify(small_snapshot.services["gmail"]) == 13
        assert clf.classify(small_snapshot.services["facebook"]) == 10

    def test_empty_evidence_falls_back_to_other(self):
        from repro.crawler.snapshot import CrawledService

        clf = ServiceClassifier()
        mystery = CrawledService(slug="x", name="Zzqy", description="")
        assert clf.classify(mystery) == 14

    def test_accuracy_requires_services(self, truth):
        with pytest.raises(ValueError):
            ServiceClassifier().accuracy([], truth)

    def test_confusion_diagonal_dominates(self, small_snapshot, truth):
        confusion = ServiceClassifier().confusion(small_snapshot.services.values(), truth)
        diagonal = sum(count for (t, p), count in confusion.items() if t == p)
        total = sum(confusion.values())
        assert diagonal / total > 0.9


class TestTable1:
    def test_service_shares_match_paper(self, small_snapshot):
        rows = table1(small_snapshot)
        for row, cat in zip(rows, CATEGORIES):
            assert row.pct_services == pytest.approx(cat.pct_services, abs=2.5), cat.name

    def test_addcount_shares_track_paper(self, small_snapshot):
        rows = table1(small_snapshot)
        for row, cat in zip(rows, CATEGORIES):
            # Small-scale corpora put several % of all adds in single
            # applets, so per-cell shares carry that granularity.
            assert row.trigger_ac_pct == pytest.approx(cat.trigger_ac_pct, abs=6.0), cat.name
            assert row.action_ac_pct == pytest.approx(cat.action_ac_pct, abs=6.0), cat.name

    def test_shares_sum_to_100(self, small_snapshot):
        rows = table1(small_snapshot)
        assert sum(r.pct_services for r in rows) == pytest.approx(100.0)
        assert sum(r.trigger_ac_pct for r in rows) == pytest.approx(100.0)
        assert sum(r.action_ac_pct for r in rows) == pytest.approx(100.0)


class TestTable2:
    def test_ours_dwarfs_ur_et_al(self, snapshot_store):
        result = table2(snapshot_store, contributors=2064)
        ours, theirs = result["ours"], result["ur_et_al"]
        assert ours["snapshots"] == 5
        assert theirs["applets"] == 224_000
        assert theirs["channels"] == 220
        # at full scale ours exceeds theirs; at reduced scale the service
        # side (unscaled) still does
        assert ours["channels"] > theirs["channels"]
        assert ours["triggers"] > theirs["triggers"]
        assert ours["actions"] > theirs["actions"]

    def test_reference_constants(self):
        assert UR_ET_AL_DATASET["adoptions"] == 12_000_000
        assert UR_ET_AL_DATASET["duration"] == "Sep 2015"


class TestTable3:
    def test_alexa_top_trigger_service(self, small_snapshot):
        result = table3(small_snapshot)
        assert result.top_trigger_services[0][0] == "Amazon Alexa"

    def test_hue_top_action_service(self, small_snapshot):
        result = table3(small_snapshot)
        assert result.top_action_services[0][0] == "Philips Hue"

    def test_expected_services_in_top_lists(self, small_snapshot):
        result = table3(small_snapshot)
        trigger_names = [name for name, _ in result.top_trigger_services]
        assert "Fitbit" in trigger_names
        action_names = [name for name, _ in result.top_action_services]
        assert "LIFX" in action_names or "Nest Thermostat" in action_names

    def test_say_a_phrase_top_trigger(self, small_snapshot):
        result = table3(small_snapshot)
        top_trigger = result.top_triggers[0]
        assert top_trigger[0] == "Say a phrase"
        assert top_trigger[1] == "Amazon Alexa"

    def test_hue_actions_dominate(self, small_snapshot):
        result = table3(small_snapshot)
        hue_actions = [entry for entry in result.top_actions if entry[1] == "Philips Hue"]
        assert len(hue_actions) >= 2  # Turn on lights, Change color, ...

    def test_counts_sorted_descending(self, small_snapshot):
        result = table3(small_snapshot)
        counts = [count for _, count in result.top_trigger_services]
        assert counts == sorted(counts, reverse=True)


class TestHeatmap:
    def test_total_mass_is_double_counted_adds(self, small_snapshot):
        matrix = interaction_heatmap(small_snapshot)
        total_adds = sum(a.add_count for a in small_snapshot.applets.values())
        assert sum(row_sums(matrix)) == total_adds
        assert sum(col_sums(matrix)) == total_adds

    def test_social_sync_hotspot(self, small_snapshot):
        matrix = interaction_heatmap(small_snapshot)
        # (10,10) social->social is a known hotspot
        assert matrix[9][9] > 0.02 * sum(row_sums(matrix))

    def test_timeloc_action_column_empty(self, small_snapshot):
        matrix = interaction_heatmap(small_snapshot)
        assert sum(matrix[i][11] for i in range(14)) == 0

    def test_intensity_normalized(self, small_snapshot):
        intensity = heatmap_intensity(interaction_heatmap(small_snapshot))
        flat = [cell for row in intensity for cell in row]
        assert max(flat) == 1.0
        assert min(flat) >= 0.0

    def test_intensity_of_empty(self):
        assert heatmap_intensity([[0, 0], [0, 0]]) == [[0.0, 0.0], [0.0, 0.0]]

    def test_ascii_rendering(self, small_snapshot):
        art = render_ascii(interaction_heatmap(small_snapshot))
        assert len(art.splitlines()) == 15  # header + 14 rows


class TestDistributions:
    def test_ranked_descending(self, small_snapshot):
        ranked = ranked_add_counts(small_snapshot)
        assert ranked == sorted(ranked, reverse=True)

    def test_top_shares_match_paper_shape(self, small_snapshot):
        shares = add_count_top_shares(small_snapshot)
        assert shares[0.01] == pytest.approx(0.84, abs=0.06)
        assert shares[0.10] == pytest.approx(0.97, abs=0.04)

    def test_log_rank_series_covers_range(self, small_snapshot):
        series = log_rank_series(small_snapshot)
        ranks = [rank for rank, _ in series]
        assert ranks[0] == 1
        assert ranks[-1] == len(small_snapshot.applets)
        values = [value for _, value in series]
        assert values == sorted(values, reverse=True)


class TestUserContribution:
    def test_stats_match_paper(self, small_snapshot):
        stats = user_contribution_stats(small_snapshot)
        assert stats.user_made_applet_fraction == pytest.approx(0.98, abs=0.02)
        assert stats.user_made_add_fraction == pytest.approx(0.86, abs=0.06)
        assert stats.dominated_by_users()

    def test_user_channel_tail(self, small_snapshot):
        stats = user_contribution_stats(small_snapshot)
        assert 0.05 < stats.top1pct_user_applet_share < 0.35
        assert 0.3 < stats.top10pct_user_applet_share < 0.65

    def test_channels_outnumber_services(self, small_snapshot):
        stats = user_contribution_stats(small_snapshot)
        assert stats.user_channels > len(small_snapshot.services)


class TestIotShares:
    def test_headline_numbers(self, small_snapshot):
        shares = iot_shares(small_snapshot)
        assert shares.iot_service_fraction == pytest.approx(0.517, abs=0.02)
        assert shares.iot_add_fraction == pytest.approx(0.16, abs=0.05)

    def test_component_shares_consistent(self, small_snapshot):
        shares = iot_shares(small_snapshot)
        assert shares.iot_add_fraction <= (
            shares.iot_trigger_add_fraction + shares.iot_action_add_fraction
        )
        assert shares.iot_add_fraction >= max(
            shares.iot_trigger_add_fraction, shares.iot_action_add_fraction
        )


class TestGrowthStats:
    def test_percentages_positive(self, snapshot_store):
        growth = growth_percentages(snapshot_store)
        assert growth["services"] == pytest.approx(11.0, abs=6.0)
        assert growth["triggers"] == pytest.approx(31.0, abs=10.0)
        assert growth["actions"] == pytest.approx(27.0, abs=10.0)
        assert growth["add_count"] == pytest.approx(19.0, abs=6.0)

    def test_weekly_series(self, snapshot_store):
        series = weekly_series(snapshot_store, "services")
        assert len(series) == 5
        with pytest.raises(KeyError):
            weekly_series(snapshot_store, "nope")

    def test_steady_growth(self, snapshot_store):
        assert monotonically_growing(snapshot_store, "applets")
        assert monotonically_growing(snapshot_store, "add_count")
