"""Property-based tests of engine execution invariants.

The paper's measurements rely on several implicit correctness properties
of the engine; hypothesis drives randomized event/poll schedules to pin
them:

* **exactly-once**: every buffered trigger event (visible within the
  batch limit) dispatches its action exactly once, no matter how polls
  and events interleave;
* **ordering**: actions for one applet dispatch in event order;
* **isolation**: events never leak across trigger identities.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ActionRef, EngineConfig, FixedPollingPolicy, IftttEngine, TriggerRef
from repro.engine.oauth import OAuthAuthority
from repro.net import Address, FixedLatency, Network
from repro.services import ActionEndpoint, PartnerService, TriggerEndpoint
from repro.simcore import Rng, Simulator


def build_world(poll_interval=7.0, batch_limit=50):
    sim = Simulator()
    net = Network(sim, Rng(13))
    engine = net.add_node(IftttEngine(
        Address("engine.cloud"),
        config=EngineConfig(poll_policy=FixedPollingPolicy(poll_interval),
                            initial_poll_delay=0.5, batch_limit=batch_limit),
        rng=Rng(3), service_time=0.0,
    ))
    service = net.add_node(PartnerService(Address("svc.cloud"), slug="svc", service_time=0.0))
    net.connect(engine.address, service.address, FixedLatency(0.01))
    executed = []
    service.add_trigger(TriggerEndpoint(
        slug="tick", name="Tick",
        matcher=lambda event, fields: not fields.get("stream")
        or fields["stream"] == event.get("stream"),
        ingredients=lambda event: {"n": event.get("n"), "stream": event.get("stream", "")},
    ))
    service.add_action(ActionEndpoint(
        slug="record", name="Record",
        executor=lambda fields: executed.append((fields.get("stream", ""), fields.get("n")))))
    engine.publish_service(service)
    authority = OAuthAuthority("svc")
    authority.register_user("u", "pw")
    engine.connect_service("u", service, authority, "pw")
    return sim, engine, service, executed


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=25))
def test_every_event_executes_exactly_once(gaps):
    """Events arriving at arbitrary times each dispatch exactly once."""
    sim, engine, service, executed = build_world()
    engine.install_applet(
        user="u", name="p",
        trigger=TriggerRef("svc", "tick"),
        action=ActionRef("svc", "record", {"n": "{{n}}", "stream": "{{stream}}"}),
    )
    sim.run_until(2.0)
    for index, gap in enumerate(gaps):
        sim.run_until(sim.now + gap)
        service.ingest_event("tick", {"n": index})
    sim.run_until(sim.now + 60.0)
    observed = sorted(int(n) for _, n in executed)
    assert observed == list(range(len(gaps)))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=8))
def test_actions_dispatch_in_event_order(burst):
    """A burst delivered in one poll dispatches chronologically."""
    sim, engine, service, executed = build_world()
    engine.install_applet(
        user="u", name="p",
        trigger=TriggerRef("svc", "tick"),
        action=ActionRef("svc", "record", {"n": "{{n}}"}),
    )
    sim.run_until(2.0)
    for index in range(burst):
        service.ingest_event("tick", {"n": index})
    sim.run_until(sim.now + 30.0)
    observed = [int(n) for _, n in executed]
    assert observed == list(range(burst))


@settings(max_examples=15, deadline=None)
@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=20))
def test_identities_are_isolated(streams):
    """Field-filtered identities only see their own stream's events."""
    sim, engine, service, executed = build_world()
    for stream in ("a", "b", "c"):
        engine.install_applet(
            user="u", name=f"p-{stream}",
            trigger=TriggerRef("svc", "tick", {"stream": stream}),
            action=ActionRef("svc", "record", {"n": "{{n}}", "stream": "{{stream}}"}),
        )
    sim.run_until(2.0)
    for index, stream in enumerate(streams):
        service.ingest_event("tick", {"n": index, "stream": stream})
        sim.run_until(sim.now + 1.0)
    sim.run_until(sim.now + 60.0)
    # each execution's stream tag matches what was ingested for that n
    expected = {(stream, str(index)) for index, stream in enumerate(streams)}
    assert set(executed) == expected


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=60), st.integers(min_value=1, max_value=10))
def test_batch_limit_caps_delivery_per_poll(n_events, batch_limit):
    """One poll delivers at most ``limit`` events (the newest ones)."""
    sim, engine, service, executed = build_world(poll_interval=1000.0, batch_limit=batch_limit)
    engine.install_applet(
        user="u", name="p",
        trigger=TriggerRef("svc", "tick"),
        action=ActionRef("svc", "record", {"n": "{{n}}"}),
    )
    sim.run_until(2.0)  # registration poll done; next poll far away
    for index in range(n_events):
        service.ingest_event("tick", {"n": index})
    # force one poll now by re-enabling (schedules an immediate-ish poll)
    engine.disable_applet(engine.applets[0].applet_id)
    engine.enable_applet(engine.applets[0].applet_id)
    sim.run_until(sim.now + 5.0)
    assert len(executed) == min(n_events, batch_limit)
