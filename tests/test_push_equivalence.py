"""Poll/hint/push delivery equivalence (ISSUE 8's headline suite).

Push-first delivery changes *when* and *how* events reach the engine —
it must never change *what* gets delivered.  This suite pins four
properties of :mod:`repro.engine.push`:

(a) **Multiset identity** — for arbitrary seeds, corpus shapes, and
    publication schedules, the three delivery modes fire the identical
    action multiset (hypothesis, end to end over a sharded fleet).
(b) **Conservation** — ``dispatched == delivered + in_retry +
    dead_lettered + in_replay`` per shard and merged, across all three
    shard strategies x both poll-dispatch modes, in every mode.
(c) **T2A stochastic ordering** — trigger-to-action latency quartiles
    order push <= hint <= poll: hints skip the polling wait but still
    cost a fetch round trip; pushes carry payloads and skip the poll
    entirely.
(d) **Degraded-push restoration** — a service shed to the poll rung
    draws intervals from the *exact* base polling distribution (the
    push mirror of PR 6's restoration proof), and re-earns the push
    rung (constant safety-net interval, no RNG) once its backlog
    drains below the low watermark.
"""

from itertools import product
from statistics import quantiles

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    ActionRef,
    EngineConfig,
    FixedPollingPolicy,
    ProductionPollingPolicy,
    PushDeliveryPolicy,
    PushPolicy,
    SHARD_STRATEGIES,
    ShardedEngine,
    TriggerRef,
)
from repro.engine.oauth import OAuthAuthority
from repro.engine.push import DELIVERY_MODES, RUNG_HINT, RUNG_POLL, RUNG_PUSH
from repro.engine.delivery import sampled_interval_quartiles
from repro.engine.scheduler import POLL_DISPATCH_MODES
from repro.net import Address, FixedLatency, Network
from repro.obs.metrics import MetricsRegistry
from repro.services import ActionEndpoint, PartnerService, TriggerEndpoint
from repro.simcore import Rng, Simulator


def engine_config_for(mode: str, **overrides) -> EngineConfig:
    """An engine config realizing one delivery mode (poll/hint/push)."""
    assert mode in DELIVERY_MODES
    defaults = dict(
        poll_policy=FixedPollingPolicy(20.0),
        initial_poll_delay=0.5,
        poll_timeout=10.0,
        action_timeout=10.0,
        realtime_allowlist=None if mode == "hint" else frozenset(),
        push_policy=PushPolicy() if mode == "push" else None,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def run_world(
    mode: str,
    *,
    strategy: str = "service_hash",
    dispatch: str = "heap",
    seed: int = 11,
    num_shards: int = 3,
    n_services: int = 3,
    per_service: int = 2,
    publication_times=(2.0, 5.0, 8.0, 11.0, 14.0, 17.0),
    poll_interval: float = 20.0,
    link_latency: float = 0.05,
    push_policy: PushPolicy = None,
):
    """One sharded fleet run in one delivery mode; returns the evidence.

    ``n_services`` sensor/sink services, ``per_service`` applets each,
    publications round-robined over the services.  The horizon covers
    the last publication plus a full poll interval plus settle margin,
    so poll mode observes everything too.

    Push mode's safety net is pinned to the poll cadence: correctness
    never depends on a push *arriving* (under ``round_robin`` no shard
    owns a service, so a push reaches only the receiving shard's
    applets — sibling shards recover via the safety-net sweep), so
    equality of the sweep and poll cadences bounds eventual delivery by
    the same horizon in all three modes.
    """
    sim = Simulator()
    rng = Rng(seed=seed, name="push-equiv")
    metrics = MetricsRegistry()
    sim.metrics = metrics
    net = Network(sim, rng.fork("network"), metrics=metrics)
    config = engine_config_for(
        mode,
        poll_policy=FixedPollingPolicy(poll_interval),
        num_shards=num_shards,
        shard_strategy=strategy,
        poll_dispatch=dispatch,
        push_policy=(
            (push_policy or PushPolicy(safety_net_interval=poll_interval))
            if mode == "push" else None
        ),
    )
    fleet = ShardedEngine(net, config=config, rng=rng.fork("engine"))
    delivered = []  # (service_index, n, delivered_at)
    services = []
    for i in range(n_services):
        service = net.add_node(PartnerService(
            Address(f"svc{i}.cloud"), slug=f"svc{i}", service_time=0.0,
            realtime=mode == "hint", push=mode == "push",
        ))
        service.add_trigger(TriggerEndpoint(slug="ping", name="Ping"))
        service.add_action(ActionEndpoint(
            slug="record", name="Record",
            executor=lambda fields, i=i: delivered.append(
                (i, fields["n"], sim.now)
            ),
        ))
        for shard in fleet.shards:
            net.connect(shard.address, service.address, FixedLatency(link_latency))
        fleet.publish_service(service)
        authority = OAuthAuthority(service.slug)
        authority.register_user("alice", "pw")
        fleet.connect_service("alice", service, authority, "pw")
        services.append(service)
    for i in range(n_services):
        for a in range(per_service):
            fleet.install_applet(
                user="alice", name=f"svc{i}-applet{a}",
                trigger=TriggerRef(f"svc{i}", "ping"),
                action=ActionRef(f"svc{i}", "record", {"n": "{{n}}"}),
            )
    published_at = {}
    for k, at in enumerate(publication_times):
        target = k % n_services
        published_at[(target, str(k))] = at
        sim.schedule(
            at, services[target].ingest_event, "ping", {"n": k},
            label=f"publish#{k}",
        )
    horizon = max(publication_times) + poll_interval + 15.0
    sim.run_until(horizon)
    per_shard = [
        {
            "dispatched": shard.actions_dispatched,
            "delivered": shard.actions_delivered,
            "in_retry": shard.actions_in_retry,
            "dead_lettered": len(shard.dead_letters),
            "in_replay": shard.actions_in_replay,
        }
        for shard in fleet.shards
    ]
    return {
        "multiset": sorted((i, n) for i, n, _ in delivered),
        "latencies": sorted(
            at - published_at[(i, n)] for i, n, at in delivered
        ),
        "per_shard": per_shard,
        "fleet_stats": fleet.stats(),
        "expected_deliveries": len(publication_times) * per_service,
    }


def assert_conserved(per_shard) -> None:
    """Per-shard and merged conservation: no action silently lost."""
    merged = {key: 0 for key in per_shard[0]}
    for stats in per_shard:
        residual = (
            stats["dispatched"] - stats["delivered"] - stats["in_retry"]
            - stats["dead_lettered"] - stats["in_replay"]
        )
        assert residual == 0, f"shard conservation violated: {stats}"
        for key, value in stats.items():
            merged[key] += value
    assert merged["dispatched"] == (
        merged["delivered"] + merged["in_retry"]
        + merged["dead_lettered"] + merged["in_replay"]
    )


class TestMultisetIdentity:
    """(a) all three modes fire the identical action multiset."""

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n_services=st.integers(min_value=1, max_value=4),
        per_service=st.integers(min_value=1, max_value=3),
        ticks=st.lists(
            st.integers(min_value=0, max_value=30), min_size=1, max_size=8
        ),
    )
    @settings(max_examples=6, deadline=None)
    def test_arbitrary_schedules(self, seed, n_services, per_service, ticks):
        times = tuple(sorted(2.0 + t for t in ticks))
        runs = {
            mode: run_world(
                mode, seed=seed, n_services=n_services,
                per_service=per_service, publication_times=times,
            )
            for mode in DELIVERY_MODES
        }
        # every publication reaches every subscribed applet exactly once
        for mode, run in runs.items():
            assert len(run["multiset"]) == run["expected_deliveries"], mode
            assert_conserved(run["per_shard"])
        assert runs["poll"]["multiset"] == runs["hint"]["multiset"]
        assert runs["poll"]["multiset"] == runs["push"]["multiset"]

    def test_push_skips_the_poll_fetch(self):
        run = run_world("push")
        stats = run["fleet_stats"]
        assert stats["push_notifications_received"] > 0
        # ingestion counts applet deliveries (fan-out included)
        assert stats["push_events_ingested"] == len(run["multiset"])
        assert stats["push_shed_to_poll"] == 0
        assert stats["push_degraded_to_hint"] == 0


class TestConservation:
    """(b) conservation per shard and merged, 3 strategies x 2 dispatch."""

    @pytest.mark.parametrize(
        "strategy,dispatch",
        list(product(sorted(SHARD_STRATEGIES), POLL_DISPATCH_MODES)),
    )
    @pytest.mark.parametrize("mode", DELIVERY_MODES)
    def test_no_action_silently_lost(self, mode, strategy, dispatch):
        run = run_world(mode, strategy=strategy, dispatch=dispatch, seed=2017)
        assert_conserved(run["per_shard"])
        assert len(run["multiset"]) == run["expected_deliveries"]

    @pytest.mark.parametrize(
        "strategy,dispatch",
        list(product(sorted(SHARD_STRATEGIES), POLL_DISPATCH_MODES)),
    )
    def test_multiset_identity_every_topology(self, strategy, dispatch):
        runs = [
            run_world(mode, strategy=strategy, dispatch=dispatch, seed=5)
            for mode in DELIVERY_MODES
        ]
        assert runs[0]["multiset"] == runs[1]["multiset"] == runs[2]["multiset"]


class TestT2AOrdering:
    """(c) T2A quartiles order push <= hint <= poll."""

    def test_stochastic_ordering(self):
        # Fixed link latency (50 ms one-way) and a 20 ms coalescing
        # window make the structural ordering visible per-sample: a push
        # pays notify + window + action; a hint additionally pays the
        # fetch-poll round trip; polling pays the schedule wait.
        q = {}
        for mode in DELIVERY_MODES:
            run = run_world(
                mode, num_shards=1, n_services=2, per_service=2,
                publication_times=tuple(2.0 + 4.0 * k for k in range(10)),
                poll_interval=60.0, link_latency=0.05,
                push_policy=PushPolicy(batch_window=0.02),
            )
            assert len(run["latencies"]) == run["expected_deliveries"]
            q[mode] = quantiles(run["latencies"], n=4)
        for i in range(3):
            assert q["push"][i] <= q["hint"][i] <= q["poll"][i]
        # and the gaps are structural, not noise: hints save the polling
        # wait; pushes additionally save the fetch round trip
        assert q["poll"][1] > 10.0
        assert q["hint"][1] < 1.0
        assert q["push"][1] < q["hint"][1]


class TestDegradedPushRestoration:
    """(d) the poll rung restores the exact base interval distribution."""

    def test_rung_decides_the_distribution(self):
        from repro.engine.push import PushServiceState

        base = ProductionPollingPolicy()
        policy = PushPolicy()
        state = PushServiceState("svc")
        wrapped = PushDeliveryPolicy(base.clone(), state, policy)
        # push rung: the constant safety net, no RNG consumption
        assert state.rung == RUNG_PUSH
        assert sampled_interval_quartiles(wrapped.clone()) == (
            policy.safety_net_interval,
        ) * 3
        # poll rung: the base distribution, exactly (same seeded RNG,
        # same draws — the wrapper adds nothing)
        state.rung = RUNG_POLL
        assert sampled_interval_quartiles(wrapped.clone()) == (
            sampled_interval_quartiles(base.clone())
        )
        # heal: back to the safety net
        state.rung = RUNG_PUSH
        assert sampled_interval_quartiles(wrapped.clone()) == (
            policy.safety_net_interval,
        ) * 3

    def test_ladder_walks_down_and_recovers_through_the_controller(self):
        """Flood a real engine's controller past both watermarks and
        watch the rung walk push -> hint -> poll, then drain and watch
        it re-earn push (hysteresis: no flapping at the high mark)."""
        sim = Simulator()
        rng = Rng(seed=3, name="ladder")
        net = Network(sim, rng.fork("net"))
        from repro.engine.engine import IftttEngine

        policy = PushPolicy(low_watermark=4, high_watermark=8, max_batch=3)
        engine = net.add_node(IftttEngine(
            Address("engine.cloud"),
            config=engine_config_for("push", push_policy=policy),
            rng=rng.fork("engine"),
        ))
        controller = engine.push
        state = controller.state_for("svc")
        def wire(k):
            return {"meta": {"id": f"e{k}", "timestamp": 0}, "n": k}

        for k in range(12):
            controller._admit(state, "identity", wire(k))
        # 0..3 admitted at push, 4..7 degraded (backlog in [low, high)),
        # 8..11 shed once the backlog reached the high mark
        assert state.rung == RUNG_POLL
        assert len(state.pending) == 8
        assert state.degraded_to_hint == 4
        assert state.shed_to_poll == 4
        # hysteresis: still poll-rung while the backlog sits between
        # the watermarks
        state.pending.popleft()
        state.pending.popleft()
        controller._refresh_rung(state)
        assert state.rung == RUNG_POLL
        # draining below low re-earns push
        while len(state.pending) >= policy.low_watermark:
            state.pending.popleft()
        controller._refresh_rung(state)
        assert state.rung == RUNG_PUSH

    def test_intermediate_rung_is_hint(self):
        from repro.engine.push import PushServiceState, PushController

        class _Eng:
            metrics = None
            trace = None

        controller = PushController(
            _Eng(), PushPolicy(low_watermark=2, high_watermark=10)
        )
        state = PushServiceState("svc")
        state.pending.extend([("i", None)] * 3)  # between the watermarks
        controller._refresh_rung(state)
        assert state.rung == RUNG_HINT
