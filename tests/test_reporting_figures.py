"""Tests for the figure-data exporters."""

import csv

from repro.reporting.figures import (
    export_all_figures,
    export_cdf,
    export_heatmap,
    export_rank_series,
    write_csv,
)


def read_csv(path):
    with open(path) as handle:
        return list(csv.reader(handle))


class TestWriters:
    def test_write_csv_creates_dirs(self, tmp_path):
        target = write_csv(tmp_path / "deep" / "dir" / "x.csv", ["a"], [[1], [2]])
        rows = read_csv(target)
        assert rows == [["a"], ["1"], ["2"]]

    def test_export_cdf(self, tmp_path):
        target = export_cdf(tmp_path / "cdf.csv", [3.0, 1.0], label="lat")
        rows = read_csv(target)
        assert rows[0] == ["lat", "cdf"]
        assert rows[1] == ["1.0", "0.5"]
        assert rows[2] == ["3.0", "1.0"]

    def test_export_heatmap(self, tmp_path):
        target = export_heatmap(tmp_path / "hm.csv", [[1, 2], [3, 4]])
        rows = read_csv(target)
        assert rows[1] == ["1", "1", "1"]
        assert rows[-1] == ["2", "2", "4"]

    def test_export_rank_series(self, tmp_path):
        target = export_rank_series(tmp_path / "rank.csv", [(1, 100), (10, 5)])
        rows = read_csv(target)
        assert rows == [["rank", "add_count"], ["1", "100"], ["10", "5"]]


class TestExportAll:
    def test_exports_every_figure(self, tmp_path):
        written = export_all_figures(
            tmp_path, corpus_scale=0.005, t2a_runs=3, seed=3
        )
        expected = {"fig2_heatmap", "fig3_addcount", "fig4_a1_a4", "fig4_a5_a7",
                    "fig5_E1", "fig5_E2", "fig5_E3", "fig6_triggers",
                    "fig6_actions", "fig7_diff"}
        assert set(written) == expected
        for path in written.values():
            assert path.exists()
            assert len(read_csv(path)) >= 2  # header + at least one row
