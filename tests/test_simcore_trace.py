"""Tests for the trace recorder."""

class TestTrace:
    def test_record_and_length(self, trace):
        trace.record(1.0, "proxy", "event", device="lamp")
        assert len(trace) == 1
        assert trace[0].source == "proxy"
        assert trace[0].get("device") == "lamp"

    def test_query_by_kind(self, trace):
        trace.record(1.0, "a", "poll")
        trace.record(2.0, "a", "action")
        assert [r.kind for r in trace.query(kind="poll")] == ["poll"]

    def test_query_by_source(self, trace):
        trace.record(1.0, "engine", "poll")
        trace.record(2.0, "service", "poll")
        assert len(trace.query(kind="poll", source="engine")) == 1

    def test_query_time_window(self, trace):
        for t in (1.0, 2.0, 3.0):
            trace.record(t, "x", "tick")
        assert trace.times("tick") == [1.0, 2.0, 3.0]
        assert [r.time for r in trace.query(kind="tick", since=2.0)] == [2.0, 3.0]
        assert [r.time for r in trace.query(kind="tick", until=2.0)] == [1.0, 2.0]

    def test_query_detail_equality(self, trace):
        trace.record(1.0, "x", "poll", applet_id=1)
        trace.record(2.0, "x", "poll", applet_id=2)
        assert len(trace.query(kind="poll", applet_id=2)) == 1

    def test_query_missing_detail_key_no_match(self, trace):
        trace.record(1.0, "x", "poll")
        assert trace.query(kind="poll", applet_id=1) == []

    def test_query_where_predicate(self, trace):
        trace.record(1.0, "x", "poll", returned=0)
        trace.record(2.0, "x", "poll", returned=3)
        hits = trace.query(kind="poll", where=lambda r: r.get("returned", 0) > 0)
        assert [r.time for r in hits] == [2.0]

    def test_first_and_last(self, trace):
        trace.record(1.0, "x", "poll", n=1)
        trace.record(2.0, "x", "poll", n=2)
        assert trace.first("poll").get("n") == 1
        assert trace.last("poll").get("n") == 2
        assert trace.first("nothing") is None
        assert trace.last("nothing") is None

    def test_kinds_histogram(self, trace):
        trace.record(1.0, "x", "poll")
        trace.record(2.0, "x", "poll")
        trace.record(3.0, "x", "action")
        assert trace.kinds() == {"poll": 2, "action": 1}

    def test_clear(self, trace):
        trace.record(1.0, "x", "poll")
        trace.clear()
        assert len(trace) == 0

    def test_iteration_order_is_append_order(self, trace):
        trace.record(5.0, "x", "b")
        trace.record(1.0, "x", "a")  # times need not be monotone
        assert [r.kind for r in trace] == ["b", "a"]
