"""Tests for the T2A latency decomposition."""

import pytest

from repro.testbed.decomposition import (
    StageBreakdown,
    mean_shares,
    run_decomposition,
)


class TestStageBreakdown:
    def test_total_and_share(self):
        breakdown = StageBreakdown(
            device_to_service=0.2, wait_for_poll=80.0,
            poll_to_action=1.0, action_to_device=0.8,
        )
        assert breakdown.total == pytest.approx(82.0)
        assert breakdown.poll_share == pytest.approx(80.0 / 82.0)

    def test_zero_total_share(self):
        breakdown = StageBreakdown(0.0, 0.0, 0.0, 0.0)
        assert breakdown.poll_share == 0.0


class TestRunDecomposition:
    @pytest.fixture(scope="class")
    def breakdowns(self):
        return run_decomposition(runs=12, seed=9)

    def test_most_runs_decompose(self, breakdowns):
        assert len(breakdowns) >= 10

    def test_poll_wait_dominates(self, breakdowns):
        """The paper's core §4 claim, as a measured share."""
        shares = mean_shares(breakdowns)
        assert shares["wait_for_poll"] > 0.9
        assert sum(shares.values()) == pytest.approx(1.0, abs=0.01)

    def test_device_and_action_paths_are_fast(self, breakdowns):
        for breakdown in breakdowns:
            assert breakdown.device_to_service < 2.0    # Table 5: 0.16 s
            assert breakdown.poll_to_action < 5.0       # Table 5: ~1 s
            assert breakdown.action_to_device < 5.0     # Table 5: ~1.7 s

    def test_components_nonnegative(self, breakdowns):
        for breakdown in breakdowns:
            assert breakdown.device_to_service >= 0
            assert breakdown.wait_for_poll >= 0
            assert breakdown.poll_to_action >= 0
            assert breakdown.action_to_device >= 0

    def test_mean_shares_requires_data(self):
        with pytest.raises(ValueError):
            mean_shares([])
