"""Tests for name generation and the generator's sampling internals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecosystem.categories import CATEGORIES
from repro.ecosystem.generator import _WeightedSampler, _largest_remainder
from repro.ecosystem.naming import (
    action_names,
    applet_name,
    service_description,
    service_name,
    slugify,
    trigger_names,
)
from repro.simcore import Rng


class TestSlugify:
    def test_basic(self):
        assert slugify("Philips Hue") == "philips_hue"

    def test_punctuation_collapsed(self):
        assert slugify("A--B  C!!") == "a_b_c"

    def test_leading_trailing_stripped(self):
        assert slugify("  -x- ") == "x"

    @given(st.text(max_size=40))
    @settings(max_examples=50)
    def test_output_alphabet(self, text):
        slug = slugify(text)
        assert all(c.islower() or c.isdigit() or c == "_" for c in slug)
        assert not slug.startswith("_") and not slug.endswith("_")


class TestNameGeneration:
    def test_service_names_unique_within_category(self):
        rng = Rng(1)
        for cat in CATEGORIES:
            names = [service_name(cat, i, rng) for i in range(160)]
            assert len(names) == len(set(names)), cat.name

    def test_trigger_names_unique_per_service(self):
        rng = Rng(2)
        for cat in CATEGORIES:
            names = trigger_names(cat, "Acme Widget", 12, rng)
            assert len(names) == len(set(names)) == 12

    def test_action_names_unique_per_service(self):
        rng = Rng(3)
        for cat in CATEGORIES:
            names = action_names(cat, "Acme Widget", 8, rng)
            assert len(names) == len(set(names)) == 8

    def test_descriptions_carry_category_vocabulary(self):
        """The classifier depends on descriptions using category keywords."""
        for cat in CATEGORIES:
            description = service_description(cat, "Acme").lower()
            assert any(keyword in description for keyword in cat.example_keywords)

    def test_applet_name_mentions_both_sides(self):
        name = applet_name("New email", "Gmail", "Turn on", "Hue")
        assert "Gmail" in name and "Hue" in name


class TestWeightedSampler:
    def test_respects_weights(self):
        sampler = _WeightedSampler([1.0, 9.0])
        rng = Rng(5)
        hits = sum(sampler.sample(rng) for _ in range(5000))
        assert hits / 5000 == pytest.approx(0.9, abs=0.03)

    def test_rejects_empty_and_zero(self):
        with pytest.raises(ValueError):
            _WeightedSampler([])
        with pytest.raises(ValueError):
            _WeightedSampler([0.0, 0.0])

    def test_zero_weight_entries_never_sampled(self):
        sampler = _WeightedSampler([0.0, 1.0, 0.0])
        rng = Rng(6)
        assert all(sampler.sample(rng) == 1 for _ in range(200))


class TestLargestRemainder:
    def test_exact_total(self):
        counts = _largest_remainder(100, [1.0, 1.0, 1.0])
        assert sum(counts) == 100

    def test_proportionality(self):
        counts = _largest_remainder(100, [75.0, 25.0])
        assert counts == [75, 25]

    @given(st.integers(min_value=0, max_value=1000),
           st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_always_sums_to_total(self, total, weights):
        counts = _largest_remainder(total, weights)
        assert sum(counts) == total
        assert all(c >= 0 for c in counts)
