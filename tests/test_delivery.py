"""Unit and property tests for health-aware adaptive delivery.

Covers the three layers of ``repro.engine.delivery`` in isolation:

* :class:`ServiceHealth` — EWMA dynamics, capped-exponential stretch
  growth, EWMA-gated decay, breaker suspension, and the no-RNG-draw
  contract while healthy;
* :class:`AdaptiveDeliveryPolicy` — byte-equivalence to the wrapped
  base policy whenever the service is healthy, for every polling-policy
  family the engine ships;
* :class:`DeliveryController` — watermarked hint/retry admission, the
  4-level degradation ladder, and its gauge/counter families.

The hypothesis property at the bottom is the §4 restoration theorem:
after *any* brownout→heal outcome schedule, the adaptive policy's
sampled interval distribution converges back to the seed lognormal
(the :class:`~repro.engine.poller.ProductionPollingPolicy` calibrated
to the paper's 58/84/122 s T2A quartiles).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.delivery import (
    AdaptiveDeliveryPolicy,
    BROWNOUT_MESSAGE,
    DEGRADATION_BREAKER_OPEN,
    DEGRADATION_HEALTHY,
    DEGRADATION_SHEDDING,
    DEGRADATION_STRETCHED,
    DeliveryController,
    DeliveryPolicy,
    HINT_ALLOW,
    HINT_DEFER,
    HINT_SHED,
    ServiceHealth,
    T2A_BASELINE_QUARTILES,
    response_is_brownout,
    sampled_interval_quartiles,
)
from repro.engine.poller import (
    AdaptivePollingPolicy,
    FixedPollingPolicy,
    ProductionPollingPolicy,
)
from repro.engine.resilience import BreakerState
from repro.obs.metrics import MetricsRegistry
from repro.simcore import Rng

from tests.helpers import build_engine_world, default_engine_config, install_ping_applet


class _CountingRng(Rng):
    """An Rng that counts uniform draws (the stretch-jitter source)."""

    def __init__(self, seed=5, name="spy"):
        super().__init__(seed=seed, name=name)
        self.uniform_draws = 0

    def uniform(self, low=0.0, high=1.0):
        self.uniform_draws += 1
        return super().uniform(low, high)


class _FakeResponse:
    def __init__(self, status, body):
        self.status = status
        self.body = body


# -- DeliveryPolicy validation ----------------------------------------------------


@pytest.mark.parametrize("overrides", [
    {"ewma_alpha": 0.0},
    {"ewma_alpha": 1.5},
    {"degrade_threshold": 0.0},
    {"recovery_successes": 0},
    {"stretch_multiplier": 1.0},
    {"max_stretch": 1.5},  # < stretch_multiplier
    {"stretch_decay": 1.0},
    {"stretch_jitter": 1.0},
    {"hint_low_watermark": 10, "hint_high_watermark": 5},
    {"retry_low_watermark": -1},
    {"hint_defer_delay": -1.0},
])
def test_delivery_policy_validates(overrides):
    with pytest.raises(ValueError):
        DeliveryPolicy(**overrides)


def test_delivery_policy_defaults_valid():
    policy = DeliveryPolicy()
    assert policy.stretch_multiplier > 1.0
    assert policy.max_stretch >= policy.stretch_multiplier


# -- ServiceHealth dynamics -------------------------------------------------------


def test_stretch_grows_capped_exponentially():
    policy = DeliveryPolicy(ewma_alpha=0.3, degrade_threshold=0.3,
                            stretch_multiplier=3.0, max_stretch=8.0)
    health = ServiceHealth(policy, "svc")
    assert health.stretch == 1.0 and not health.degraded
    health.record_failure(brownout=True)     # ewma 0.3 >= threshold
    assert health.stretch == 3.0
    health.record_failure()                  # growth capped at max_stretch
    assert health.stretch == 8.0
    health.record_failure()
    assert health.stretch == 8.0
    assert health.failures == 3 and health.brownouts_observed == 1


def test_single_successes_mid_brownout_do_not_unstretch():
    """Alternating 50%-style outcomes never reach the recovery streak,
    so the stretch ratchets to the cap and stays there."""
    health = ServiceHealth(DeliveryPolicy(), "svc")
    for _ in range(6):
        health.record_failure(brownout=True)
        health.record_success()
    assert health.degraded
    assert health.stretch == DeliveryPolicy().max_stretch


def test_decay_requires_cool_ewma_and_streak():
    policy = DeliveryPolicy(recovery_successes=2)
    health = ServiceHealth(policy, "svc")
    for _ in range(4):
        health.record_failure()
    stretched = health.stretch
    assert stretched == policy.max_stretch
    # One success: streak too short, no decay regardless of EWMA.
    health.record_success()
    assert health.stretch == stretched
    # Feed successes until fully healed; decay must end at exactly 1.0.
    for _ in range(32):
        health.record_success()
    assert health.stretch == 1.0
    assert not health.degraded
    assert health.error_ewma < policy.degrade_threshold


def test_decay_waits_for_ewma_below_threshold():
    """With a hot EWMA, even a qualifying success streak keeps the
    stretch in place (the EWMA gate of record_success)."""
    policy = DeliveryPolicy(ewma_alpha=0.3, degrade_threshold=0.3,
                            recovery_successes=2)
    health = ServiceHealth(policy, "svc")
    for _ in range(6):
        health.record_failure()
    assert health.error_ewma > 0.8
    health.record_success()
    health.record_success()          # streak == 2 but ewma ~0.43 still hot
    assert health.error_ewma >= policy.degrade_threshold
    assert health.stretch == policy.max_stretch


def test_stretch_factor_no_rng_draw_when_healthy():
    health = ServiceHealth(DeliveryPolicy(), "svc")
    rng = _CountingRng()
    assert health.stretch_factor(rng) == 1.0
    assert rng.uniform_draws == 0
    assert health.stretched_samples == 0


def test_stretch_factor_jitters_when_degraded():
    policy = DeliveryPolicy(stretch_jitter=0.1)
    health = ServiceHealth(policy, "svc")
    health.record_failure()
    health.record_failure()
    rng = _CountingRng()
    factor = health.stretch_factor(rng)
    assert rng.uniform_draws == 1
    assert health.stretched_samples == 1
    low = health.stretch * (1.0 - policy.stretch_jitter)
    high = health.stretch * (1.0 + policy.stretch_jitter)
    assert low <= factor <= high


def test_breaker_open_suspends_stretch():
    health = ServiceHealth(DeliveryPolicy(), "svc")
    health.record_failure()
    health.record_failure()
    assert health.degraded
    rng = _CountingRng()
    health.on_breaker_transition(BreakerState.OPEN)
    assert health.stretch_factor(rng) == 1.0
    assert rng.uniform_draws == 0
    health.on_breaker_transition(BreakerState.HALF_OPEN)
    assert health.stretch_factor(rng) == 1.0
    health.on_breaker_transition(BreakerState.CLOSED)
    assert health.stretch_factor(rng) > 1.0


# -- AdaptiveDeliveryPolicy -------------------------------------------------------


@pytest.mark.parametrize("base_factory", [
    lambda: FixedPollingPolicy(10.0),
    lambda: ProductionPollingPolicy(),
    lambda: AdaptivePollingPolicy(fast=5.0, slow=120.0),
], ids=["fixed", "production", "adaptive-poller"])
def test_wrapper_byte_equivalent_to_base_when_healthy(base_factory):
    health = ServiceHealth(DeliveryPolicy(), "svc")
    wrapper = AdaptiveDeliveryPolicy(base_factory(), health)
    assert sampled_interval_quartiles(wrapper) == sampled_interval_quartiles(base_factory())


def test_wrapper_stretches_when_degraded_and_restores_after_heal():
    health = ServiceHealth(DeliveryPolicy(stretch_jitter=0.0), "svc")
    base = FixedPollingPolicy(10.0)
    wrapper = AdaptiveDeliveryPolicy(base, health)
    rng = Rng(1)
    assert wrapper.next_interval(rng) == 10.0
    health.record_failure()
    health.record_failure()
    assert wrapper.next_interval(rng) == 10.0 * health.stretch
    for _ in range(16):
        health.record_success()
    assert wrapper.next_interval(rng) == 10.0


def test_wrapper_clone_shares_health():
    health = ServiceHealth(DeliveryPolicy(), "svc")
    wrapper = AdaptiveDeliveryPolicy(FixedPollingPolicy(10.0), health)
    clone = wrapper.clone()
    assert clone is not wrapper and clone.base is not wrapper.base
    assert clone.health is wrapper.health


def test_response_is_brownout_sniffs_marker():
    assert response_is_brownout(
        _FakeResponse(503, {"errors": [{"message": BROWNOUT_MESSAGE}]}))
    assert not response_is_brownout(
        _FakeResponse(503, {"errors": [{"message": "service unavailable"}]}))
    assert not response_is_brownout(
        _FakeResponse(200, {"errors": [{"message": BROWNOUT_MESSAGE}]}))
    assert not response_is_brownout(_FakeResponse(503, None))


# -- DeliveryController: admission + ladder ---------------------------------------


def _controller_world(**policy_overrides):
    policy = DeliveryPolicy(**policy_overrides)
    world = build_engine_world(default_engine_config(delivery_policy=policy))
    return world, world.engine.delivery


def test_engine_without_policy_has_no_controller():
    world = build_engine_world()
    assert world.engine.delivery is None
    stats = world.engine.stats()
    assert stats["delivery_hints_deferred"] == 0
    assert stats["delivery_overload_dead_letters"] == 0


def test_hint_admission_watermarks():
    world, controller = _controller_world(hint_low_watermark=2, hint_high_watermark=4)
    for _ in range(2):
        assert controller.admit_hint("svc") == HINT_ALLOW
        controller.note_fast_poll_scheduled("svc")
    # backlog == low watermark -> defer
    assert controller.admit_hint("svc") == HINT_DEFER
    controller.note_fast_poll_scheduled("svc")
    controller.note_fast_poll_scheduled("svc")
    # backlog == high watermark -> shed to polling
    assert controller.admit_hint("svc") == HINT_SHED
    stats = controller.stats()
    assert stats["delivery_hints_deferred"] == 1
    assert stats["delivery_hints_shed"] == 1
    # Draining the backlog re-admits.
    for _ in range(4):
        controller.note_fast_poll_done("svc")
    assert controller.admit_hint("svc") == HINT_ALLOW


def test_retry_admission_watermarks_and_overload():
    world, controller = _controller_world(retry_low_watermark=1, retry_high_watermark=2)
    rng = Rng(2)
    assert controller.admit_retry("svc")
    controller.note_retry_enqueued("svc")
    # depth >= low watermark: backoff is multiplied (deferred).
    delay = controller.stretch_retry_delay("svc", 1.0, rng)
    assert delay > 1.0
    controller.note_retry_enqueued("svc")
    # depth >= high watermark: refused -> caller dead-letters as overload.
    assert not controller.admit_retry("svc")
    stats = controller.stats()
    assert stats["delivery_retries_deferred"] == 1
    assert stats["delivery_overload_dead_letters"] == 1
    controller.note_retry_dequeued("svc")
    assert controller.admit_retry("svc")


def test_replay_headroom_respects_retry_watermark():
    world, controller = _controller_world(retry_low_watermark=2, retry_high_watermark=4)
    assert controller.replay_headroom("svc") == 4
    controller.note_retry_enqueued("svc")
    controller.note_replay_enqueued("svc", 2)
    assert controller.replay_headroom("svc") == 1
    controller.note_replay_dequeued("svc")
    assert controller.replay_headroom("svc") == 2


def test_degradation_ladder_levels():
    world, controller = _controller_world(hint_low_watermark=1, hint_high_watermark=2)
    world.engine.metrics = MetricsRegistry()
    slug = "svc"
    assert controller.level_of(slug) == DEGRADATION_HEALTHY
    health = controller.health_for(slug)
    controller.note_result(slug, ok=False, brownout=True)
    controller.note_result(slug, ok=False, brownout=True)
    assert health.degraded
    assert controller.level_of(slug) == DEGRADATION_STRETCHED
    controller.note_fast_poll_scheduled(slug)
    controller.note_fast_poll_scheduled(slug)
    assert controller.level_of(slug) == DEGRADATION_SHEDDING
    controller.on_breaker_transition(slug, BreakerState.CLOSED, BreakerState.OPEN)
    assert controller.level_of(slug) == DEGRADATION_BREAKER_OPEN
    controller.on_breaker_transition(slug, BreakerState.OPEN, BreakerState.CLOSED)
    controller.note_fast_poll_done(slug)
    controller.note_fast_poll_done(slug)
    for _ in range(16):
        controller.note_result(slug, ok=True)
    assert controller.level_of(slug) == DEGRADATION_HEALTHY
    # The gauge tracked every transition.
    gauge = world.engine.metrics.gauge("engine.degradation_level", service=slug)
    assert gauge.value == DEGRADATION_HEALTHY


def test_breaker_state_gauge_live_from_creation():
    world = build_engine_world(default_engine_config(delivery_policy=DeliveryPolicy()))
    world.engine.metrics = MetricsRegistry()
    install_ping_applet(world.engine)
    breaker = world.engine.breaker_for("svc")
    gauge = world.engine.metrics.gauge("engine.breaker_state", service="svc")
    assert gauge.value == BreakerState.CLOSED.level
    assert world.engine.breaker_levels() == {"svc": 0}
    for _ in range(10):
        breaker.record_failure(world.sim.now)
    assert gauge.value == BreakerState.OPEN.level
    assert world.engine.breaker_levels() == {"svc": 2}


# -- batch endpoint under brownout (per-entry draws) ------------------------------


def test_batch_endpoint_brownout_rejects_per_entry():
    """A browning-out service 503s batch entries *individually* with the
    brownout marker — one poisoned draw cannot fail its batchmates, and
    a full-rate brownout rejects every entry."""
    from repro.faults import FaultInjector, FaultPlan, service_brownout
    from repro.net import Address, FixedLatency, HttpNode, Network
    from repro.services import ActionEndpoint, PartnerService
    from repro.services.partner import BATCH_ACTION_PATH, BatchActionRequest
    from repro.simcore import Simulator

    sim = Simulator()
    net = Network(sim, Rng(5))
    client = net.add_node(HttpNode(Address("client.test")))
    service = net.add_node(PartnerService(Address("svc.test"), slug="svc",
                                          service_time=0.0))
    service.add_action(ActionEndpoint(slug="a", name="A", executor=lambda f: None))
    net.connect(client.address, service.address, FixedLatency(0.01))
    injector = FaultInjector(sim, net, services=(service,), rng=Rng(6, name="faults"))
    injector.apply(FaultPlan((
        service_brownout("svc", at=0.0, duration=100.0, error_rate=1.0),
    )))
    body = BatchActionRequest(entries=(
        {"action_slug": "a"}, {"action_slug": "a"}, {"action_slug": "a"},
    )).to_body()
    got = []
    sim.schedule(1.0, lambda: client.post(
        service.address, BATCH_ACTION_PATH, body=body, on_response=got.append))
    sim.run_until(5.0)
    response = got[0]
    assert response.status == 200            # the batch request itself lands
    results = response.body["data"]
    assert len(results) == 3
    assert all(entry["status"] == 503 for entry in results)
    assert all(response_is_brownout(_FakeResponse(entry["status"], entry))
               for entry in results)
    assert service.requests_rejected_by_faults == 3   # one draw per entry
    assert service.actions_executed == 0


def test_batch_endpoint_healthy_draws_nothing():
    """With no active fault state the batch path consumes no fault RNG
    and executes every entry."""
    from repro.net import Address, FixedLatency, HttpNode, Network
    from repro.services import ActionEndpoint, PartnerService
    from repro.services.partner import BATCH_ACTION_PATH, BatchActionRequest
    from repro.simcore import Simulator

    sim = Simulator()
    net = Network(sim, Rng(5))
    client = net.add_node(HttpNode(Address("client.test")))
    service = net.add_node(PartnerService(Address("svc.test"), slug="svc",
                                          service_time=0.0))
    service.add_action(ActionEndpoint(slug="a", name="A", executor=lambda f: None))
    net.connect(client.address, service.address, FixedLatency(0.01))
    assert service.faults is None
    body = BatchActionRequest(entries=(
        {"action_slug": "a"}, {"action_slug": "a"},
    )).to_body()
    got = []
    sim.schedule(1.0, lambda: client.post(
        service.address, BATCH_ACTION_PATH, body=body, on_response=got.append))
    sim.run_until(5.0)
    assert all(entry["status"] == 200 for entry in got[0].body["data"])
    assert service.batch_actions_executed == 2
    assert service.requests_rejected_by_faults == 0


# -- the §4 restoration property --------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    outcomes=st.lists(st.booleans(), min_size=1, max_size=120),
    probe_seed=st.integers(min_value=1, max_value=2 ** 16),
)
def test_interval_distribution_restored_after_any_brownout_schedule(
    outcomes, probe_seed
):
    """After any brownout→heal outcome schedule, the adaptive policy's
    sampled interval distribution equals the seed lognormal's.

    ``ProductionPollingPolicy`` is the seed distribution calibrated so
    poll-bound T2A matches the paper's 58/84/122 s quartiles
    (:data:`T2A_BASELINE_QUARTILES`, pinned by test_calibration) — so
    restoring this distribution *is* restoring the §4 baseline.
    """
    health = ServiceHealth(DeliveryPolicy(), "svc")
    wrapper = AdaptiveDeliveryPolicy(ProductionPollingPolicy(), health)
    for failed in outcomes:
        if failed:
            health.record_failure(brownout=True)
        else:
            health.record_success()
    # Heal: the service recovers and successes accumulate.
    for _ in range(64):
        if not health.degraded:
            break
        health.record_success()
    assert health.stretch == 1.0
    assert not health.degraded
    healed = sampled_interval_quartiles(wrapper, seed=probe_seed, samples=500)
    baseline = sampled_interval_quartiles(
        ProductionPollingPolicy(), seed=probe_seed, samples=500
    )
    assert healed == baseline
    assert len(T2A_BASELINE_QUARTILES) == 3  # the anchor the baseline encodes
