"""Tests for addresses, messages, latency models, links, and routing."""

import pytest

from repro.net import (
    Address,
    FixedLatency,
    Link,
    LognormalLatency,
    Message,
    Network,
    Node,
    RoutingError,
    UniformLatency,
    lan_latency,
    wan_latency,
)
from repro.simcore import Rng, Simulator


class TestAddress:
    def test_zone_suffix(self):
        assert Address("hue-hub.home").zone == "home"
        assert Address("engine.ifttt.cloud").zone == "cloud"

    def test_no_zone(self):
        assert Address("localhost").zone == ""

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Address("")

    def test_hashable_and_equal(self):
        assert Address("a.home") == Address("a.home")
        assert len({Address("a.home"), Address("a.home")}) == 1


class TestMessage:
    def test_unique_ids(self):
        a = Message(Address("a"), Address("b"), "http", {})
        b = Message(Address("a"), Address("b"), "http", {})
        assert a.msg_id != b.msg_id

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(Address("a"), Address("b"), "http", {}, size_bytes=-1)


class TestLatencyModels:
    def test_fixed(self, rng):
        assert FixedLatency(0.5).sample(rng) == 0.5

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1.0)

    def test_uniform_range(self, rng):
        model = UniformLatency(0.1, 0.2)
        for _ in range(100):
            assert 0.1 <= model.sample(rng) <= 0.2

    def test_uniform_rejects_inverted(self):
        with pytest.raises(ValueError):
            UniformLatency(0.3, 0.2)

    def test_lognormal_floor_and_per_byte(self, rng):
        model = LognormalLatency(median=0.01, sigma=0.0, per_byte=0.001, floor=0.02)
        assert model.sample(rng, size_bytes=10) == pytest.approx(0.02 + 0.01)

    def test_lognormal_rejects_bad_args(self):
        with pytest.raises(ValueError):
            LognormalLatency(median=0.0)
        with pytest.raises(ValueError):
            LognormalLatency(median=1.0, sigma=-1)

    def test_presets_positive(self, rng):
        for model in (lan_latency(), wan_latency()):
            sample = model.sample(rng)
            assert sample > 0

    def test_lan_faster_than_wan_typically(self, rng):
        lan = sum(lan_latency().sample(rng) for _ in range(200))
        wan = sum(wan_latency().sample(rng) for _ in range(200))
        assert lan < wan


class TestLink:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Link(Address("a"), Address("a"), FixedLatency(0.1))

    def test_other_endpoint(self):
        link = Link(Address("a"), Address("b"), FixedLatency(0.1))
        assert link.other(Address("a")) == Address("b")
        with pytest.raises(ValueError):
            link.other(Address("c"))

    def test_stats_accumulate(self, rng):
        link = Link(Address("a"), Address("b"), FixedLatency(0.1))
        link.sample_delay(rng, 100)
        link.sample_delay(rng, 50)
        assert link.messages_forwarded == 2
        assert link.bytes_forwarded == 150


class _Recorder(Node):
    def __init__(self, address):
        super().__init__(address)
        self.got = []

    def on_message(self, message):
        self.got.append((self.now, message.payload))


def build_chain(n=3, latency=0.1):
    """a0 - a1 - ... chained topology of recorder nodes."""
    sim = Simulator()
    net = Network(sim, Rng(5))
    nodes = [net.add_node(_Recorder(Address(f"n{i}.test"))) for i in range(n)]
    for left, right in zip(nodes, nodes[1:]):
        net.connect(left.address, right.address, FixedLatency(latency))
    return sim, net, nodes


class TestNetwork:
    def test_duplicate_address_rejected(self):
        sim, net, nodes = build_chain(2)
        with pytest.raises(ValueError):
            net.add_node(_Recorder(nodes[0].address))

    def test_duplicate_link_rejected(self):
        sim, net, nodes = build_chain(2)
        with pytest.raises(ValueError):
            net.connect(nodes[0].address, nodes[1].address, FixedLatency(0.1))

    def test_link_to_unknown_node_rejected(self):
        sim, net, nodes = build_chain(2)
        with pytest.raises(KeyError):
            net.connect(nodes[0].address, Address("ghost.test"), FixedLatency(0.1))

    def test_delivery_over_single_hop(self):
        sim, net, nodes = build_chain(2, latency=0.25)
        nodes[0].send(nodes[1].address, "test", {"x": 1})
        sim.run()
        assert nodes[1].got == [(0.25, {"x": 1})]

    def test_multi_hop_delay_sums(self):
        sim, net, nodes = build_chain(4, latency=0.1)
        nodes[0].send(nodes[3].address, "test", "payload")
        sim.run()
        assert nodes[3].got[0][0] == pytest.approx(0.3)

    def test_route_is_min_hop(self):
        sim, net, nodes = build_chain(4)
        # add a shortcut 0 <-> 3
        net.connect(nodes[0].address, nodes[3].address, FixedLatency(0.1))
        assert len(net.route(nodes[0].address, nodes[3].address)) == 1

    def test_route_to_self_is_empty(self):
        sim, net, nodes = build_chain(2)
        assert net.route(nodes[0].address, nodes[0].address) == []

    def test_unreachable_raises_routing_error(self):
        sim = Simulator()
        net = Network(sim, Rng(5))
        a = net.add_node(_Recorder(Address("a.test")))
        b = net.add_node(_Recorder(Address("b.test")))
        with pytest.raises(RoutingError):
            net.route(a.address, b.address)

    def test_send_to_unreachable_counts_drop(self):
        sim = Simulator()
        net = Network(sim, Rng(5))
        a = net.add_node(_Recorder(Address("a.test")))
        net.add_node(_Recorder(Address("b.test")))
        a.send(Address("b.test"), "test", {})
        sim.run()
        assert net.messages_dropped == 1

    def test_send_to_unregistered_raises(self):
        sim, net, nodes = build_chain(2)
        with pytest.raises(KeyError):
            nodes[0].send(Address("ghost.test"), "test", {})

    def test_link_down_reroutes_or_drops(self):
        sim, net, nodes = build_chain(3)
        net.set_link_state(nodes[0].address, nodes[1].address, up=False)
        nodes[0].send(nodes[2].address, "test", {})
        sim.run()
        assert net.messages_dropped == 1
        net.set_link_state(nodes[0].address, nodes[1].address, up=True)
        nodes[0].send(nodes[2].address, "test", {})
        sim.run()
        assert len(nodes[2].got) == 1

    def test_node_counters(self):
        sim, net, nodes = build_chain(2)
        nodes[0].send(nodes[1].address, "test", {})
        sim.run()
        assert nodes[0].messages_sent == 1
        assert nodes[1].messages_received == 1

    def test_detached_node_cannot_send(self):
        node = _Recorder(Address("loner.test"))
        with pytest.raises(RuntimeError):
            node.send(Address("x.test"), "test", {})
