"""Tests for the corpus-to-engine bridge."""

import pytest

from repro.engine import EngineConfig, FixedPollingPolicy
from repro.testbed.corpus_bridge import build_corpus_world, materialize_service


class TestMaterializeService:
    def test_endpoints_mirrored(self, small_corpus):
        record = small_corpus.service("amazon_alexa")
        service = materialize_service(record)
        assert len(service.trigger_slugs) == len(record.triggers)
        assert service.slug == "amazon_alexa"

    def test_actions_record_invocations(self, small_corpus):
        record = small_corpus.service("philips_hue")
        service = materialize_service(record)
        slug = service.action_slugs[0]
        service.action(slug).executor({"x": 1})
        assert service.executed_actions == [slug]


class TestCorpusWorld:
    @pytest.fixture(scope="class")
    def world(self, small_corpus):
        config = EngineConfig(poll_policy=FixedPollingPolicy(5.0),
                              initial_poll_delay=0.5, initial_poll_jitter=5.0)
        return build_corpus_world(small_corpus, n_applets=40, engine_config=config, seed=17)

    def test_sampled_count(self, world):
        assert len(world.applets) == 40
        assert len(world.corpus_applets) == 40
        assert len({a.applet_id for a in world.corpus_applets}) == 40

    def test_only_touched_services_materialized(self, world):
        touched = {r.trigger_service_slug for r in world.corpus_applets} | {
            r.action_service_slug for r in world.corpus_applets
        }
        assert set(world.services) == touched

    def test_popular_services_likely_present(self, world):
        """Popularity weighting should pull in at least one anchor."""
        anchors = {"amazon_alexa", "philips_hue", "facebook", "twitter", "gmail"}
        assert anchors & set(world.services)

    def test_end_to_end_execution(self, world):
        world.run_for(15.0)  # let registration polls land
        action_service = world.services[world.corpus_applets[0].action_service_slug]
        before = len(action_service.executed_actions)
        world.fire_trigger(0, payload="x")
        world.run_for(20.0)
        assert len(action_service.executed_actions) > before

    def test_engine_polls_whole_fleet(self, world):
        world.run_for(30.0)
        assert world.engine.polls_sent >= len(world.applets)
