"""The declarative experiment matrix (repro.experiments).

Covers the ISSUE-9 contract: spec validation errors, cell expansion
counts, seed stability (same spec → identical cell results, snapshots
included), serial / ``--jobs`` / subprocess equivalence, and the CLI
round trip.
"""

import copy
import json
import os
import subprocess
import sys

import pytest

from repro.cli import main as cli_main
from repro.experiments import (
    ExperimentSpecError,
    cell_seed,
    expand_cells,
    load_spec,
    run_cell,
)
from repro.experiments.runner import run_matrix
from repro.experiments.spec import parse_spec, spec_sha256
from repro.experiments.stats import (
    bootstrap_median_interval,
    mean_confidence_interval,
    pooled_quartiles,
    t_critical,
)
from repro.reporting import experiment_fault_comparison, render_experiment_table

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SMOKE_SPEC = os.path.join(REPO, "EXPERIMENTS", "matrix_smoke.json")
FULL_SPEC = os.path.join(REPO, "EXPERIMENTS", "matrix_full.json")


def tiny_spec_data(**overrides):
    """A minimal valid spec exercising all three kinds, fast to run."""
    data = {
        "name": "tiny",
        "description": "unit-test matrix",
        "sweeps": [
            {
                "name": "t2a",
                "kind": "t2a",
                "repeats": 2,
                "axes": {"applet": ["A5"], "fault_plan": ["baseline", "plan_a"]},
                "knobs": {"runs": 3, "spacing": 60.0},
            },
            {
                "name": "chaos",
                "kind": "chaos",
                "repeats": 1,
                "axes": {"scenario": ["outage"], "delivery_mode": ["poll", "push"]},
                "knobs": {"drain": 30.0},
            },
            {
                "name": "fleet",
                "kind": "fleet",
                "repeats": 1,
                "axes": {"corpus_size": [40]},
                "knobs": {"publications": 2},
            },
        ],
        "fault_plans": {
            "plan_a": {
                "faults": [
                    {"kind": "service_outage", "service": "philips_hue",
                     "at": 60.0, "duration": 60.0}
                ]
            }
        },
    }
    data.update(overrides)
    return data


# -- spec validation -------------------------------------------------------------------


class TestSpecValidation:
    def test_valid_spec_parses(self):
        spec = parse_spec(tiny_spec_data())
        assert spec.name == "tiny"
        assert spec.cell_count == 2 + 2 + 1

    def test_not_an_object(self):
        with pytest.raises(ExperimentSpecError, match="JSON object"):
            parse_spec([1, 2, 3])

    def test_unknown_top_level_field(self):
        with pytest.raises(ExperimentSpecError, match="unknown fields"):
            parse_spec(tiny_spec_data(bogus=1))

    def test_missing_name(self):
        data = tiny_spec_data()
        del data["name"]
        with pytest.raises(ExperimentSpecError, match="'name'"):
            parse_spec(data)

    def test_empty_sweeps(self):
        with pytest.raises(ExperimentSpecError, match="'sweeps'"):
            parse_spec(tiny_spec_data(sweeps=[]))

    def test_unknown_kind(self):
        data = tiny_spec_data()
        data["sweeps"][0]["kind"] = "warp"
        with pytest.raises(ExperimentSpecError, match="kind"):
            parse_spec(data)

    def test_unknown_axis_for_kind(self):
        data = tiny_spec_data()
        # shards is a chaos axis, not a t2a axis.
        data["sweeps"][0]["axes"]["shards"] = [1, 2]
        with pytest.raises(ExperimentSpecError, match="unknown axes"):
            parse_spec(data)

    def test_axis_value_out_of_domain(self):
        data = tiny_spec_data()
        data["sweeps"][0]["axes"]["applet"] = ["A99"]
        with pytest.raises(ExperimentSpecError, match="A99"):
            parse_spec(data)

    def test_duplicate_axis_values(self):
        data = tiny_spec_data()
        data["sweeps"][1]["axes"]["delivery_mode"] = ["poll", "poll"]
        with pytest.raises(ExperimentSpecError, match="duplicate"):
            parse_spec(data)

    def test_undefined_fault_plan(self):
        data = tiny_spec_data()
        data["sweeps"][0]["axes"]["fault_plan"] = ["baseline", "nope"]
        with pytest.raises(ExperimentSpecError, match="nope"):
            parse_spec(data)

    def test_reserved_plan_name(self):
        data = tiny_spec_data()
        data["fault_plans"]["baseline"] = {"faults": []}
        with pytest.raises(ExperimentSpecError, match="reserved"):
            parse_spec(data)

    def test_invalid_fault_plan_body(self):
        data = tiny_spec_data()
        data["fault_plans"]["plan_a"] = {"faults": [{"kind": "meteor_strike"}]}
        with pytest.raises(ExperimentSpecError, match="plan_a"):
            parse_spec(data)

    def test_bad_repeats(self):
        data = tiny_spec_data()
        data["sweeps"][0]["repeats"] = 0
        with pytest.raises(ExperimentSpecError, match="repeats"):
            parse_spec(data)

    def test_unknown_knob(self):
        data = tiny_spec_data()
        data["sweeps"][0]["knobs"]["warp_factor"] = 9
        with pytest.raises(ExperimentSpecError, match="unknown knobs"):
            parse_spec(data)

    def test_duplicate_sweep_names(self):
        data = tiny_spec_data()
        data["sweeps"][1]["name"] = "t2a"
        with pytest.raises(ExperimentSpecError, match="duplicate sweep names"):
            parse_spec(data)

    def test_cell_limit(self):
        data = tiny_spec_data()
        data["sweeps"] = [
            {
                "name": "big",
                "kind": "fleet",
                "axes": {"corpus_size": list(range(1, 5001))},
            }
        ]
        with pytest.raises(ExperimentSpecError, match="limit"):
            parse_spec(data)


# -- expansion + seeds -----------------------------------------------------------------


class TestExpansion:
    def test_cell_count_is_product_summed_across_sweeps(self):
        spec = parse_spec(tiny_spec_data())
        cells = expand_cells(spec)
        assert len(cells) == spec.cell_count == 5
        assert [c.index for c in cells] == list(range(5))

    def test_omitted_axes_get_defaults(self):
        spec = parse_spec(tiny_spec_data())
        chaos = [c for c in expand_cells(spec) if c.sweep.name == "chaos"]
        assert all(c.params["shards"] == 1 for c in chaos)
        assert all(c.params["poll_dispatch"] == "heap" for c in chaos)

    def test_committed_specs_parse(self):
        smoke = load_spec(SMOKE_SPEC)
        full = load_spec(FULL_SPEC)
        assert smoke.cell_count == 10
        assert full.cell_count == 38
        # The full matrix must sweep the whole applet suite against a
        # fault plan alongside the Figure 4 baseline (the ISSUE-9 slice).
        t2a = [c for c in expand_cells(full) if c.sweep.kind == "t2a"]
        applets = {c.params["applet"] for c in t2a}
        plans = {c.params["fault_plan"] for c in t2a}
        assert applets == {f"A{i}" for i in range(1, 8)}
        assert plans == {"baseline", "service_faults"}

    def test_seed_depends_on_spec_content(self):
        a = parse_spec(tiny_spec_data())
        b = parse_spec(tiny_spec_data(description="edited"))
        assert spec_sha256(tiny_spec_data()) == a.sha256
        assert a.sha256 != b.sha256
        assert cell_seed(a, 0) != cell_seed(b, 0)

    def test_seed_distinct_per_cell_and_repeat(self):
        spec = parse_spec(tiny_spec_data())
        seeds = {cell_seed(spec, i, r) for i in range(5) for r in range(3)}
        assert len(seeds) == 15


# -- statistics ------------------------------------------------------------------------


class TestStats:
    def test_t_critical_tabulated_and_limit(self):
        assert t_critical(1, 0.95) == pytest.approx(12.706)
        assert t_critical(10, 0.95) == pytest.approx(2.228)
        assert t_critical(1000, 0.95) == pytest.approx(1.960)
        with pytest.raises(ValueError):
            t_critical(0)
        with pytest.raises(ValueError):
            t_critical(5, 0.42)

    def test_mean_interval(self):
        assert mean_confidence_interval([1.0]) is None
        mean, lo, hi = mean_confidence_interval([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert lo < mean < hi
        # Zero variance collapses to a zero-width interval.
        mean, lo, hi = mean_confidence_interval([5.0, 5.0, 5.0])
        assert lo == hi == mean == pytest.approx(5.0)

    def test_bootstrap_interval_deterministic(self):
        samples = [float(v) for v in (3, 1, 4, 1, 5, 9, 2, 6, 5, 3)]
        a = bootstrap_median_interval(samples, seed=11)
        b = bootstrap_median_interval(samples, seed=11)
        c = bootstrap_median_interval(samples, seed=12)
        assert a == b
        assert a != c
        center, lo, hi = a
        assert lo <= center <= hi

    def test_pooled_quartiles_small_sample_exact(self):
        assert pooled_quartiles([]) is None
        p25, p50, p75 = pooled_quartiles([1.0, 2.0, 3.0])
        assert p50 == pytest.approx(2.0)
        assert p25 <= p50 <= p75


# -- seed stability / determinism ------------------------------------------------------


class TestSeedStability:
    def test_same_cell_twice_is_identical(self):
        spec = parse_spec(tiny_spec_data())
        first = run_cell(spec, 0)
        second = run_cell(spec, 0)
        assert first.to_dict() == second.to_dict()
        # Snapshots too, not just the summaries.
        assert [r.snapshot for r in first.repeats] == [
            r.snapshot for r in second.repeats
        ]

    def test_repeats_vary_within_a_cell(self):
        spec = parse_spec(tiny_spec_data())
        result = run_cell(spec, 0)
        assert result.repeats[0].seed != result.repeats[1].seed
        assert result.repeats[0].samples != result.repeats[1].samples

    def test_fault_plan_slice_differs_from_baseline(self):
        spec = parse_spec(tiny_spec_data())
        cells = expand_cells(spec)
        baseline = next(
            c.index for c in cells if c.params.get("fault_plan") == "baseline"
        )
        faulted = next(
            c.index for c in cells if c.params.get("fault_plan") == "plan_a"
        )
        a = run_cell(spec, baseline)
        b = run_cell(spec, faulted)
        assert a.to_dict()["params"]["fault_plan"] == "baseline"
        assert b.to_dict()["params"]["fault_plan"] == "plan_a"

    def test_cell_index_out_of_range(self):
        spec = parse_spec(tiny_spec_data())
        with pytest.raises(IndexError):
            run_cell(spec, 99)


# -- jobs / isolation equivalence ------------------------------------------------------


class TestMatrixEquivalence:
    def _write_spec(self, tmp_path, data):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(data))
        return str(path)

    def test_serial_in_process_equals_parallel_subprocess(self, tmp_path):
        data = tiny_spec_data()
        spec_path = self._write_spec(tmp_path, data)
        spec = load_spec(spec_path)

        serial = run_matrix(
            spec, spec_path, str(tmp_path / "serial"), isolate=False
        )
        parallel = run_matrix(
            spec, spec_path, str(tmp_path / "parallel"), jobs=4, isolate=True
        )
        assert serial.to_json() == parallel.to_json()
        # The gate diffs bytes on disk; mirror that here.
        a = (tmp_path / "serial" / "results.json").read_bytes()
        b = (tmp_path / "parallel" / "results.json").read_bytes()
        assert a == b
        for index in range(spec.cell_count):
            name = f"cell_{index:04d}.json"
            assert (tmp_path / "serial" / "cells" / name).read_bytes() == (
                tmp_path / "parallel" / "cells" / name
            ).read_bytes()

    def test_matrix_results_shape(self, tmp_path):
        data = tiny_spec_data()
        spec_path = self._write_spec(tmp_path, data)
        spec = load_spec(spec_path)
        results = run_matrix(spec, spec_path, str(tmp_path / "out"), isolate=False)
        payload = results.to_dict()
        assert payload["cell_count"] == spec.cell_count
        assert payload["spec_sha256"] == spec.sha256
        for cell in payload["cells"]:
            assert cell["n"] > 0
            p25, p50, p75 = cell["t2a_quartiles"]
            assert p25 <= p50 <= p75
            ci = cell["median_ci"]
            assert ci["lo"] <= ci["center"] <= ci["hi"]
            assert "snapshots" not in cell


# -- reporting -------------------------------------------------------------------------


class TestReporting:
    def _results(self, tmp_path):
        data = tiny_spec_data()
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(data))
        spec = load_spec(str(spec_path))
        return run_matrix(spec, str(spec_path), str(tmp_path / "out"), isolate=False)

    def test_render_table(self, tmp_path):
        results = self._results(tmp_path)
        text = render_experiment_table(results.to_dict())
        assert "experiment matrix 'tiny'" in text
        for sweep in ("t2a", "chaos", "fleet"):
            assert sweep in text

    def test_fault_comparison_pairs_baseline(self, tmp_path):
        results = self._results(tmp_path)
        pairs = experiment_fault_comparison(results.to_dict())
        assert len(pairs) == 1
        (pair,) = pairs
        assert pair["applet"] == "A5"
        assert pair["fault_plan"] == "plan_a"
        assert pair["baseline_quartiles"] is not None


# -- CLI round trip --------------------------------------------------------------------


class TestCli:
    def test_list(self, tmp_path, capsys):
        assert cli_main(["experiments", SMOKE_SPEC, "--list"]) == 0
        out = capsys.readouterr().out
        assert "10 cells" in out
        assert "t2a_smoke" in out

    def test_invalid_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "sweeps": []}))
        assert cli_main(["experiments", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_single_cell_then_full_run_round_trip(self, tmp_path, capsys):
        data = tiny_spec_data()
        # Shrink to one fast sweep for the CLI path.
        data["sweeps"] = [data["sweeps"][2]]
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(data))

        out_a = tmp_path / "by-cell"
        assert cli_main([
            "experiments", str(spec_path), "--cell", "0", "--output", str(out_a)
        ]) == 0
        cell_file = out_a / "cells" / "cell_0000.json"
        assert cell_file.exists()

        out_b = tmp_path / "whole"
        assert cli_main([
            "experiments", str(spec_path), "--in-process", "--quiet",
            "--output", str(out_b),
        ]) == 0
        capsys.readouterr()
        # The --cell artifact is byte-identical to the orchestrated one.
        whole_cell = out_b / "cells" / "cell_0000.json"
        assert cell_file.read_bytes() == whole_cell.read_bytes()
        results = json.loads((out_b / "results.json").read_text())
        assert results["spec_name"] == "tiny"
        assert results["cell_count"] == 1

    def test_cell_out_of_range_exits_2(self, tmp_path, capsys):
        data = tiny_spec_data()
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(data))
        assert cli_main([
            "experiments", str(spec_path), "--cell", "99",
            "--output", str(tmp_path / "o"),
        ]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_subprocess_entry_point(self, tmp_path):
        """`python -m repro experiments` works as the orchestrator invokes it."""
        data = tiny_spec_data()
        data["sweeps"] = [data["sweeps"][2]]
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(data))
        src = os.path.join(REPO, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "experiments", str(spec_path),
             "--cell", "0", "--output", str(tmp_path / "out")],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert (tmp_path / "out" / "cells" / "cell_0000.json").exists()


def test_spec_sha_insensitive_to_key_order():
    data = tiny_spec_data()
    shuffled = dict(reversed(list(copy.deepcopy(data).items())))
    assert spec_sha256(data) == spec_sha256(shuffled)
