"""Push-mode regressions: tie-break determinism and breaker parking.

Satellite coverage for ISSUE 8:

* **Deterministic tie-break** — a push drain and a poll wake landing on
  the *same* simulation instant are ordered by the kernel's
  ``(time, priority, seq)`` total order (whichever was scheduled first
  fires first).  A crafted same-timestamp schedule replays
  byte-identically: same delivered order, same
  ``dispatch_invariant_snapshot`` bytes.
* **Breaker parking** — a push-contract service whose breaker is open
  at the *receiving* engine has its notifications parked on the shared
  hint-suppression dict (counted by ``realtime_hints_suppressed``) and
  resumed as fast polls on close — including the ``round_robin``
  no-home-shard case, where the push lands on the last-published shard
  and is parked/resumed entirely there.
"""

import json

from repro.engine import (
    ActionRef,
    EngineConfig,
    FixedPollingPolicy,
    IftttEngine,
    PushPolicy,
    ShardedEngine,
    TriggerRef,
)
from repro.engine.oauth import OAuthAuthority
from repro.engine.resilience import BreakerState
from repro.net import Address, FixedLatency, Network
from repro.obs.metrics import MetricsRegistry, dispatch_invariant_snapshot
from repro.services import ActionEndpoint, PartnerService, TriggerEndpoint
from repro.simcore import Rng, Simulator
from repro.simcore.trace import Trace

SENSOR = "push_sensor"
SINK = "push_sink"


def build_push_world(
    *,
    seed: int = 7,
    push_policy: PushPolicy = None,
    num_shards: int = 1,
    shard_strategy: str = "service_hash",
    applets: int = 1,
    link_latency: float = 0.0,
):
    """A minimal push-contract world: sensor -> engine(s) -> sink.

    Zero link latency and a fixed poll policy keep every event time on
    an exact binary-float grid, so same-instant collisions can be
    crafted deliberately.
    """
    sim = Simulator()
    rng = Rng(seed=seed, name="push-mode")
    trace = Trace()
    metrics = MetricsRegistry()
    sim.metrics = metrics
    net = Network(sim, rng.fork("net"), metrics=metrics)
    config = EngineConfig(
        poll_policy=FixedPollingPolicy(2.0),
        initial_poll_delay=0.5,
        poll_timeout=10.0,
        action_timeout=10.0,
        realtime_allowlist=frozenset(),
        push_policy=push_policy or PushPolicy(),
        num_shards=num_shards,
        shard_strategy=shard_strategy,
    )
    fleet = ShardedEngine(net, config=config, rng=rng.fork("engine"), trace=trace)
    delivered = []
    sensor = net.add_node(PartnerService(
        Address("sensor.cloud"), slug=SENSOR, service_time=0.0,
        push=True, trace=trace,
    ))
    sensor.add_trigger(TriggerEndpoint(slug="tick", name="Tick"))
    sink = net.add_node(PartnerService(
        Address("sink.cloud"), slug=SINK, service_time=0.0, trace=trace,
    ))
    sink.add_action(ActionEndpoint(
        slug="record", name="Record",
        executor=lambda fields: delivered.append((sim.now, fields["n"])),
    ))
    for shard in fleet.shards:
        for node in (sensor, sink):
            net.connect(shard.address, node.address, FixedLatency(link_latency))
    for service in (sensor, sink):
        fleet.publish_service(service)
        authority = OAuthAuthority(service.slug)
        authority.register_user("alice", "pw")
        fleet.connect_service("alice", service, authority, "pw")
    for index in range(applets):
        fleet.install_applet(
            user="alice", name=f"applet{index}",
            trigger=TriggerRef(SENSOR, "tick"),
            action=ActionRef(SINK, "record", {"n": "{{n}}"}),
        )
    return sim, fleet, sensor, sink, delivered, trace, metrics


class TestSameInstantTieBreak:
    """A drain and a poll wake on the same instant replay identically."""

    def run_collision(self):
        # Safety-net polls land at 0.5, 2.5, 4.5, ...; a publication at
        # 4.0 with a 0.5 s batch window drains at exactly 4.5 (all
        # exact binary floats), colliding with the 4.5 poll wake.
        policy = PushPolicy(batch_window=0.5, safety_net_interval=2.0)
        sim, fleet, sensor, sink, delivered, trace, metrics = build_push_world(
            push_policy=policy,
        )
        sim.schedule(4.0, sensor.ingest_event, "tick", {"n": 1}, label="pub")
        sim.run_until(10.0)
        drains = trace.times("engine_push_drain")
        polls = trace.times("engine_poll_sent")
        return {
            "delivered": list(delivered),
            "drains": drains,
            "polls": polls,
            "snapshot": json.dumps(
                dispatch_invariant_snapshot(metrics), sort_keys=True
            ).encode(),
            "stats": fleet.stats(),
        }

    def test_collision_actually_happens(self):
        run = self.run_collision()
        assert set(run["drains"]) & set(run["polls"]), (
            "crafted schedule must put a push drain and a poll wake on "
            f"the same instant (drains={run['drains']}, polls={run['polls']})"
        )
        # the pushed event was delivered exactly once (dedupe holds even
        # with the poll fetching the same buffer at the same instant)
        assert [n for _, n in run["delivered"]] == ["1"]
        assert run["stats"]["push_events_ingested"] == 1

    def test_replay_is_byte_identical(self):
        first = self.run_collision()
        second = self.run_collision()
        assert first["delivered"] == second["delivered"]
        assert first["drains"] == second["drains"]
        assert first["polls"] == second["polls"]
        assert first["snapshot"] == second["snapshot"]


class TestBreakerParking:
    """Open breaker parks pushes; close resumes them as fast polls."""

    def trip(self, engine: IftttEngine, slug: str, sim: Simulator) -> None:
        breaker = engine.breaker_for(slug)
        for _ in range(engine.config.breaker_policy.failure_threshold):
            breaker.record_failure(sim.now)
        assert breaker.state is BreakerState.OPEN

    def heal(self, engine: IftttEngine, slug: str, sim: Simulator) -> None:
        breaker = engine.breaker_for(slug)
        assert breaker.allow(sim.now)  # past recovery timeout -> half-open
        breaker.record_success(sim.now)
        assert breaker.state is BreakerState.CLOSED

    def test_park_and_resume_single_engine(self):
        sim, fleet, sensor, sink, delivered, trace, metrics = build_push_world(
            push_policy=PushPolicy(safety_net_interval=600.0),
        )
        engine = fleet.shards[0]
        sim.run_until(1.0)  # registration polls create the identity
        self.trip(engine, SENSOR, sim)
        sensor.ingest_event("tick", {"n": 1})
        sim.run_until(5.0)
        # parked, not processed: no delivery, the shared suppression
        # dict holds the identity, and both counter families ticked
        assert delivered == []
        assert engine.realtime_hints_suppressed == 1
        assert SENSOR in engine._suppressed_hints
        stats = engine.stats()
        assert stats["push_notifications_parked"] == 1
        assert stats["push_notifications_received"] == 1
        assert stats["push_events_ingested"] == 0
        # heal well past the recovery timeout; the CLOSED transition
        # resumes the parked identity as a fast poll
        sim.run_until(5.0 + engine.config.breaker_policy.recovery_timeout)
        self.heal(engine, SENSOR, sim)
        sim.run_until(sim.now + 5.0)
        assert engine.realtime_hints_resumed == 1
        assert [n for _, n in delivered] == ["1"]
        assert engine.actions_dispatched == engine.actions_delivered == 1

    def test_park_and_resume_round_robin_receiving_shard(self):
        """round_robin has no home shard: the push lands on the
        last-published shard, parks there, and resumes there — sibling
        shards are untouched and fall back to the safety-net sweep."""
        sim, fleet, sensor, sink, delivered, trace, metrics = build_push_world(
            push_policy=PushPolicy(safety_net_interval=600.0),
            num_shards=2, shard_strategy="round_robin", applets=2,
        )
        receiving = fleet.shards[-1]  # last publisher wins the contract
        other = fleet.shards[0]
        sim.run_until(1.0)
        self.trip(receiving, SENSOR, sim)
        sensor.ingest_event("tick", {"n": 1})
        sim.run_until(5.0)
        assert delivered == []
        assert receiving.stats()["push_notifications_parked"] == 1
        assert receiving.realtime_hints_suppressed == 1
        assert other.realtime_hints_suppressed == 0
        assert other.stats()["push_notifications_received"] == 0
        sim.run_until(5.0 + receiving.config.breaker_policy.recovery_timeout)
        self.heal(receiving, SENSOR, sim)
        sim.run_until(sim.now + 5.0)
        # only the receiving shard's applet resumed via fast poll; the
        # other shard's applet waits for its (long) safety-net poll
        assert receiving.realtime_hints_resumed == 1
        assert len(delivered) == 1
        assert receiving.actions_delivered == 1
        assert other.actions_delivered == 0
        # fleet-wide conservation still holds mid-degradation
        stats = fleet.stats()
        assert stats["actions_dispatched"] == (
            stats["actions_delivered"] + stats["actions_in_retry"]
            + stats["dead_letters"] + stats["actions_in_replay"]
        )
