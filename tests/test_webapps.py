"""Tests for the web-application models."""

import pytest

from repro.net import Address, FixedLatency, HttpNode, Network
from repro.simcore import Rng, Simulator
from repro.webapps import Gmail, GoogleDrive, GoogleSheets, WeatherService


@pytest.fixture
def cloud():
    sim = Simulator()
    net = Network(sim, Rng(21))
    gmail = net.add_node(Gmail(Address("gmail.cloud"), service_time=0.0))
    drive = net.add_node(GoogleDrive(Address("drive.cloud"), service_time=0.0))
    sheets = net.add_node(GoogleSheets(Address("sheets.cloud"), service_time=0.0))
    weather = net.add_node(WeatherService(Address("weather.cloud"), service_time=0.0))
    client = net.add_node(HttpNode(Address("client.cloud")))
    for app in (gmail, drive, sheets, weather):
        net.connect(client.address, app.address, FixedLatency(0.01))
    net.connect(sheets.address, gmail.address, FixedLatency(0.01))
    return sim, client, gmail, drive, sheets, weather


class TestGmail:
    def test_deliver_and_inbox(self, cloud):
        _, _, gmail, _, _, _ = cloud
        gmail.deliver_email("alice@g", "bob@x", "hello")
        assert [m.subject for m in gmail.inbox("alice@g")] == ["hello"]

    def test_messages_since_cursor(self, cloud):
        _, _, gmail, _, _, _ = cloud
        first = gmail.deliver_email("a@g", "s@x", "one")
        gmail.deliver_email("a@g", "s@x", "two")
        newer = gmail.messages_since("a@g", since_id=first.msg_id)
        assert [m.subject for m in newer] == ["two"]

    def test_attachment_filter(self, cloud):
        _, _, gmail, _, _, _ = cloud
        gmail.deliver_email("a@g", "s@x", "plain")
        gmail.deliver_email("a@g", "s@x", "report", attachments=("r.pdf",))
        got = gmail.messages_since("a@g", 0, with_attachments=True)
        assert [m.subject for m in got] == ["report"]
        assert got[0].has_attachments()

    def test_send_endpoint_delivers_locally(self, cloud):
        sim, client, gmail, _, _, _ = cloud
        client.post(gmail.address, "/api/send",
                    body={"to": "a@g", "from": "b@g", "subject": "api mail"})
        sim.run()
        assert gmail.inbox("a@g")[0].subject == "api mail"

    def test_send_endpoint_validates(self, cloud):
        sim, client, gmail, _, _, _ = cloud
        got = []
        client.post(gmail.address, "/api/send", body={"to": "a@g"}, on_response=got.append)
        sim.run()
        assert got[0].status == 400

    def test_messages_endpoint(self, cloud):
        sim, client, gmail, _, _, _ = cloud
        gmail.deliver_email("a@g", "s@x", "hello", attachments=("f.txt",))
        got = []
        client.get(gmail.address, "/api/messages", body={"user": "a@g", "since_id": 0},
                   on_response=got.append)
        sim.run()
        messages = got[0].body["messages"]
        assert messages[0]["subject"] == "hello"
        assert messages[0]["attachments"] == ["f.txt"]

    def test_activity_log_records_delivery(self, cloud):
        _, _, gmail, _, _, _ = cloud
        gmail.deliver_email("a@g", "s@x", "hello")
        assert gmail.activity_since(0, activity="email_received")


class TestGoogleDrive:
    def test_upload_and_list(self, cloud):
        _, _, _, drive, _, _ = cloud
        drive.upload("me", "a.pdf", folder="/ifttt")
        drive.upload("me", "b.pdf", folder="/other")
        assert [f.name for f in drive.files("me", folder="/ifttt")] == ["a.pdf"]
        assert len(drive.files("me")) == 2

    def test_upload_endpoint(self, cloud):
        sim, client, _, drive, _, _ = cloud
        got = []
        client.post(drive.address, "/api/upload",
                    body={"user": "me", "name": "x.pdf"}, on_response=got.append)
        sim.run()
        assert got[0].ok
        assert drive.files("me")[0].name == "x.pdf"

    def test_upload_endpoint_validates(self, cloud):
        sim, client, _, drive, _, _ = cloud
        got = []
        client.post(drive.address, "/api/upload", body={"user": "me"}, on_response=got.append)
        sim.run()
        assert got[0].status == 400

    def test_files_endpoint_since_cursor(self, cloud):
        sim, client, _, drive, _, _ = cloud
        first = drive.upload("me", "a.pdf")
        drive.upload("me", "b.pdf")
        got = []
        client.get(drive.address, "/api/files",
                   body={"user": "me", "since_id": first.file_id}, on_response=got.append)
        sim.run()
        assert [f["name"] for f in got[0].body["files"]] == ["b.pdf"]


class TestGoogleSheets:
    def test_append_and_read(self, cloud):
        _, _, _, _, sheets, _ = cloud
        assert sheets.append_row("log", ["a", 1]) == 1
        assert sheets.append_row("log", ["b", 2]) == 2
        assert sheets.rows("log") == [["a", 1], ["b", 2]]
        assert sheets.rows("log", since_row=1) == [["b", 2]]

    def test_row_count_unknown_sheet(self, cloud):
        _, _, _, _, sheets, _ = cloud
        assert sheets.row_count("nope") == 0

    def test_http_append_and_read(self, cloud):
        sim, client, _, _, sheets, _ = cloud
        got = []
        client.post(sheets.address, "/api/sheets/songs/rows",
                    body={"cells": ["song 1"]}, on_response=got.append)
        sim.run()
        assert got[0].body == {"row": 1}
        got2 = []
        client.get(sheets.address, "/api/sheets/songs/rows",
                   body={"since_row": 0}, on_response=got2.append)
        sim.run()
        assert got2[0].body["rows"] == [["song 1"]]

    def test_append_validates_cells(self, cloud):
        sim, client, _, _, sheets, _ = cloud
        got = []
        client.post(sheets.address, "/api/sheets/s/rows", body={"cells": "oops"},
                    on_response=got.append)
        sim.run()
        assert got[0].status == 400

    def test_notification_feature_emails_owner(self, cloud):
        sim, _, gmail, _, sheets, _ = cloud
        sheets.enable_notifications("log", gmail.address, "owner@g")
        sheets.append_row("log", ["x"])
        sim.run()
        inbox = gmail.inbox("owner@g")
        assert len(inbox) == 1
        assert "modified" in inbox[0].subject

    def test_disable_notifications(self, cloud):
        sim, _, gmail, _, sheets, _ = cloud
        sheets.enable_notifications("log", gmail.address, "owner@g")
        sheets.disable_notifications("log")
        sheets.append_row("log", ["x"])
        sim.run()
        assert gmail.inbox("owner@g") == []


class TestWeather:
    def test_set_and_current(self, cloud):
        _, _, _, _, _, weather = cloud
        assert weather.set_conditions("home", "rain") is True
        assert weather.set_conditions("home", "rain") is False  # no change
        assert weather.current("home") == "rain"

    def test_unknown_condition_rejected(self, cloud):
        _, _, _, _, _, weather = cloud
        with pytest.raises(ValueError):
            weather.set_conditions("home", "frogs")

    def test_changes_endpoint(self, cloud):
        sim, client, _, _, _, weather = cloud
        weather.set_conditions("home", "clear")
        weather.set_conditions("home", "rain")
        got = []
        client.get(weather.address, "/api/changes",
                   body={"location": "home", "since_id": 0}, on_response=got.append)
        sim.run()
        conditions = [c["condition"] for c in got[0].body["changes"]]
        assert conditions == ["clear", "rain"]

    def test_weather_process_changes_conditions(self, cloud):
        sim, _, _, _, _, weather = cloud
        weather.start_weather_process("home", Rng(5), mean_dwell=100.0)
        sim.run_until(2000.0)
        assert weather.current("home") is not None
