"""Tests for the cross-study growth trajectory."""

import math

import pytest

from repro.analysis.history import (
    STUDY_POINTS,
    fit_exponential,
    fit_residuals,
)


class TestStudyPoints:
    def test_paper_values(self):
        counts = [count for _, count, _ in STUDY_POINTS]
        assert counts == [67_000, 224_000, 320_000]

    def test_chronological(self):
        years = [year for year, _, _ in STUDY_POINTS]
        assert years == sorted(years)


class TestFit:
    def test_growth_is_positive_and_fast(self):
        fit = fit_exponential()
        # 67K -> 320K over ~3.8 years is ~+50%/year
        assert 0.3 < fit.annual_growth < 0.9
        assert 1.0 < fit.doubling_time_years < 2.5

    def test_projection_brackets_observations(self):
        fit = fit_exponential()
        assert fit.project(2013.0) < 120_000
        assert fit.project(2017.0) > 250_000

    def test_residuals_modest(self):
        # three points, two parameters: the fit tracks within ~30%
        assert all(abs(r) < 0.3 for r in fit_residuals())

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_exponential([(2015.0, 10, "one point")])
        with pytest.raises(ValueError):
            fit_exponential([(2015.0, 10, "a"), (2015.0, 20, "b")])

    def test_flat_series_never_doubles(self):
        fit = fit_exponential([(2014.0, 100, "a"), (2016.0, 100, "b")])
        assert math.isinf(fit.doubling_time_years)
