"""Tests for cross-snapshot churn analysis."""

import pytest

from repro.analysis.churn import churn_between, weekly_churn


class TestChurnBetween:
    def test_ordering_enforced(self, snapshot_store):
        later = snapshot_store.last()
        earlier = snapshot_store.first()
        with pytest.raises(ValueError):
            churn_between(later, earlier)

    def test_growth_only_corpus_never_removes(self, snapshot_store):
        report = churn_between(snapshot_store.first(), snapshot_store.last())
        assert report.services_removed == []
        assert report.applets_removed == []

    def test_additions_counted(self, snapshot_store):
        report = churn_between(snapshot_store.first(), snapshot_store.last())
        assert len(report.services_added) > 0
        assert report.triggers_added > 0
        assert report.actions_added > 0
        assert len(report.applets_added) > 0
        assert report.add_count_delta > 0

    def test_additions_match_summaries(self, snapshot_store):
        earlier, later = snapshot_store.first(), snapshot_store.last()
        report = churn_between(earlier, later)
        assert len(report.services_added) == (
            later.summary()["services"] - earlier.summary()["services"]
        )
        assert len(report.applets_added) == (
            later.summary()["applets"] - earlier.summary()["applets"]
        )

    def test_top_gainers_sorted_and_positive(self, snapshot_store):
        report = churn_between(snapshot_store.first(), snapshot_store.last(), top_k=5)
        gains = [gained for _, _, gained in report.top_gainers]
        assert gains == sorted(gains, reverse=True)
        assert all(g > 0 for g in gains)
        assert len(report.top_gainers) <= 5

    def test_birth_rate(self, snapshot_store):
        report = churn_between(snapshot_store.first(), snapshot_store.last())
        weeks = report.later_week - report.earlier_week
        assert report.applet_birth_rate == pytest.approx(len(report.applets_added) / weeks)


class TestWeeklyChurn:
    def test_consecutive_reports(self, snapshot_store):
        reports = weekly_churn(snapshot_store)
        assert len(reports) == len(snapshot_store) - 1
        for report in reports:
            assert report.earlier_week < report.later_week
            assert report.add_count_delta > 0
