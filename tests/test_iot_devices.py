"""Tests for the device models (Hue, WeMo, Echo/Alexa, SmartThings, Nest)."""

import pytest

from repro.iot import (
    AlexaCloud,
    DeviceError,
    EchoDevice,
    GenericDevice,
    HueHub,
    HueLamp,
    NestThermostat,
    SmartThingsHub,
    WemoSwitch,
)
from repro.iot.registry import DEVICE_CATALOG, device_types_by_category
from repro.net import Address, FixedLatency, HttpNode, Network
from repro.simcore import Rng, Simulator, Trace


@pytest.fixture
def home():
    """A tiny home LAN: hub + lamp + switch + fixed 10 ms links."""
    sim = Simulator()
    net = Network(sim, Rng(11))
    trace = Trace()
    lamp = net.add_node(HueLamp(Address("lamp.home"), "lamp1", trace=trace))
    hub = net.add_node(HueHub(Address("hub.home"), trace=trace))
    switch = net.add_node(WemoSwitch(Address("wemo.home"), "wemo1", trace=trace))
    net.connect(lamp.address, hub.address, FixedLatency(0.01))
    net.connect(hub.address, switch.address, FixedLatency(0.01))
    hub.pair_lamp(lamp)
    return sim, net, trace, lamp, hub, switch


class TestHueLamp:
    def test_initial_state(self, home):
        _, _, _, lamp, _, _ = home
        assert lamp.get_state("on") is False
        assert lamp.get_state("color") == "white"

    def test_apply_command_changes_state(self, home):
        _, _, _, lamp, _, _ = home
        changed = lamp.apply_command({"on": True, "color": "blue"})
        assert changed == {"on": True, "color": "blue"}
        assert lamp.get_state("on") is True

    def test_idempotent_command_reports_no_change(self, home):
        _, _, _, lamp, _, _ = home
        lamp.apply_command({"on": True})
        assert lamp.apply_command({"on": True}) == {}
        assert lamp.actuations == 2  # commands counted even when state unchanged

    def test_invalid_color_rejected(self, home):
        _, _, _, lamp, _, _ = home
        with pytest.raises(DeviceError):
            lamp.apply_command({"color": "octarine"})

    def test_invalid_brightness_rejected(self, home):
        _, _, _, lamp, _, _ = home
        with pytest.raises(DeviceError):
            lamp.apply_command({"brightness": 300})

    def test_unknown_key_rejected(self, home):
        _, _, _, lamp, _, _ = home
        with pytest.raises(DeviceError):
            lamp.apply_command({"volume": 11})

    def test_event_log_and_trace(self, home):
        _, _, trace, lamp, _, _ = home
        lamp.apply_command({"on": True})
        assert len(lamp.events("state_changed")) == 1
        assert trace.query(kind="device_state_changed", source="lamp1")


class TestHueHub:
    def test_pairing_registers_lamp(self, home):
        _, _, _, _, hub, _ = home
        assert hub.lamp_ids == ["lamp1"]

    def test_zigbee_command_path(self, home):
        sim, _, _, lamp, hub, _ = home
        hub.command_lamp("lamp1", {"on": True})
        sim.run()
        assert lamp.get_state("on") is True

    def test_unknown_lamp_rejected(self, home):
        _, _, _, _, hub, _ = home
        with pytest.raises(DeviceError):
            hub.command_lamp("ghost", {"on": True})

    def test_rest_state_change(self, home):
        sim, net, _, lamp, hub, switch = home
        client = net.add_node(HttpNode(Address("client.home")))
        net.connect(client.address, hub.address, FixedLatency(0.01))
        got = []
        client.request(hub.address, "PUT", "/api/lights/lamp1/state",
                       body={"on": True}, on_response=got.append)
        sim.run()
        assert got[0].ok
        assert lamp.get_state("on") is True

    def test_rest_unknown_lamp_404(self, home):
        sim, net, _, _, hub, _ = home
        client = net.add_node(HttpNode(Address("client.home")))
        net.connect(client.address, hub.address, FixedLatency(0.01))
        got = []
        client.request(hub.address, "PUT", "/api/lights/ghost/state",
                       body={"on": True}, on_response=got.append)
        sim.run()
        assert got[0].status == 404

    def test_state_mirror_updates_on_event(self, home):
        sim, net, _, lamp, hub, _ = home
        hub.command_lamp("lamp1", {"on": True})
        sim.run()
        client = net.add_node(HttpNode(Address("c2.home")))
        net.connect(client.address, hub.address, FixedLatency(0.01))
        got = []
        client.get(hub.address, "/api/lights", on_response=got.append)
        sim.run()
        assert got[0].body["lights"]["lamp1"]["on"] is True

    def test_subscription_pushes_events(self, home):
        sim, net, _, lamp, hub, _ = home
        subscriber = net.add_node(HttpNode(Address("sub.home")))
        net.connect(subscriber.address, hub.address, FixedLatency(0.01))
        events = []
        subscriber.add_route("POST", "/events/hue", lambda req: events.append(req.body) or "ok")
        subscriber.post(hub.address, "/api/subscribe", body={"callback": "sub.home"})
        sim.run()
        hub.command_lamp("lamp1", {"on": True})
        sim.run()
        assert events and events[0]["device_id"] == "lamp1"


class TestWemoSwitch:
    def test_press_toggles(self, home):
        _, _, _, _, _, switch = home
        assert switch.press() is True
        assert switch.press() is False

    def test_set_binary_state_validates(self, home):
        _, _, _, _, _, switch = home
        with pytest.raises(DeviceError):
            switch.set_binary_state("on")

    def test_upnp_subscribe_and_notify(self, home):
        sim, net, _, _, hub, switch = home

        # the hub plays the subscriber role here via raw upnp messages
        class UpnpListener(HttpNode):
            def __init__(self, address):
                super().__init__(address)
                self.notifications = []

            def on_non_http_message(self, message):
                if message.payload.get("event"):
                    self.notifications.append(message.payload)

        listener = net.add_node(UpnpListener(Address("listener.home")))
        net.connect(listener.address, switch.address, FixedLatency(0.01))
        listener.send(switch.address, "upnp", {"type": "subscribe", "callback": "listener.home"})
        sim.run()
        switch.press()
        sim.run()
        assert listener.notifications
        assert listener.notifications[0]["state"]["on"] is True

    def test_upnp_set_and_get(self, home):
        sim, net, _, _, _, switch = home

        class Controller(HttpNode):
            def __init__(self, address):
                super().__init__(address)
                self.states = []

            def on_non_http_message(self, message):
                if message.payload.get("type") == "binary_state":
                    self.states.append(message.payload["on"])

        controller = net.add_node(Controller(Address("ctl.home")))
        net.connect(controller.address, switch.address, FixedLatency(0.01))
        controller.send(switch.address, "upnp", {"type": "set_binary_state", "on": True})
        sim.run()
        controller.send(switch.address, "upnp", {"type": "get_binary_state"})
        sim.run()
        assert controller.states == [True]


class TestAlexa:
    @pytest.fixture
    def alexa(self):
        sim = Simulator()
        net = Network(sim, Rng(12))
        cloud = net.add_node(AlexaCloud(Address("alexa.cloud")))
        echo = net.add_node(EchoDevice(Address("echo.home"), "echo1", cloud=cloud.address))
        net.connect(echo.address, cloud.address, FixedLatency(0.05))
        return sim, net, cloud, echo

    def test_trigger_phrase_parsing(self, alexa):
        sim, _, cloud, echo = alexa
        echo.hear("Alexa, trigger party time")
        sim.run()
        assert cloud.intent_log[0]["intent"] == "say_phrase"
        assert cloud.intent_log[0]["phrase"] == "party time"

    def test_todo_and_shopping_lists(self, alexa):
        sim, _, cloud, echo = alexa
        echo.hear("Alexa, add milk to my shopping list")
        echo.hear("Alexa, add taxes to my to-do list")
        sim.run()
        assert cloud.shopping_list == ["milk"]
        assert cloud.todo_list == ["taxes"]

    def test_song_intent(self, alexa):
        sim, _, cloud, echo = alexa
        echo.hear("Alexa, play bohemian rhapsody")
        sim.run()
        assert cloud.intent_log[0] ["intent"] == "song_played"

    def test_unrecognized_utterance(self, alexa):
        sim, _, cloud, echo = alexa
        echo.hear("Alexa, fold my laundry")
        sim.run()
        assert cloud.intent_log[0]["intent"] == "unrecognized"

    def test_consumer_push(self, alexa):
        sim, net, cloud, echo = alexa
        consumer = net.add_node(HttpNode(Address("svc.cloud")))
        net.connect(consumer.address, cloud.address, FixedLatency(0.01))
        intents = []
        consumer.add_route("POST", "/events/alexa", lambda req: intents.append(req.body) or "ok")
        consumer.post(cloud.address, "/v1/consumers", body={"callback": "svc.cloud"})
        sim.run()
        echo.hear("Alexa, trigger lights")
        sim.run()
        assert intents and intents[0]["intent"] == "say_phrase"

    def test_duplicate_consumer_registration(self, alexa):
        sim, net, cloud, _ = alexa
        consumer = net.add_node(HttpNode(Address("svc.cloud")))
        net.connect(consumer.address, cloud.address, FixedLatency(0.01))
        consumer.post(cloud.address, "/v1/consumers", body={"callback": "svc.cloud"})
        consumer.post(cloud.address, "/v1/consumers", body={"callback": "svc.cloud"})
        sim.run()
        assert len(cloud._consumers) == 1


class TestSmartThings:
    @pytest.fixture
    def st(self):
        sim = Simulator()
        net = Network(sim, Rng(13))
        hub = net.add_node(SmartThingsHub(Address("st.home")))
        lock = net.add_node(GenericDevice(Address("lock.home"), "lock1", "lock"))
        net.connect(lock.address, hub.address, FixedLatency(0.01))
        hub.pair_device(lock)
        return sim, net, hub, lock

    def test_unknown_capability_rejected(self):
        with pytest.raises(DeviceError):
            GenericDevice(Address("x.home"), "x", "teleport")

    def test_actuation_via_hub(self, st):
        sim, _, hub, lock = st
        hub.command_device("lock1", True)
        sim.run()
        assert lock.get_state("locked") is True

    def test_actuate_validates_type(self, st):
        _, _, _, lock = st
        with pytest.raises(DeviceError):
            lock.actuate("locked")

    def test_temperature_capability_coerces_float(self):
        sensor = GenericDevice(Address("t.home"), "t1", "temperature")
        sensor.network = None
        sensor.actuate(21)
        assert sensor.get_state("temperature") == 21.0

    def test_hub_rest_and_subscription(self, st):
        sim, net, hub, lock = st
        subscriber = net.add_node(HttpNode(Address("sub.home")))
        net.connect(subscriber.address, hub.address, FixedLatency(0.01))
        events = []
        subscriber.add_route("POST", "/events/smartthings", lambda req: events.append(req.body) or "ok")
        subscriber.post(hub.address, "/api/subscribe", body={"callback": "sub.home"})
        subscriber.post(hub.address, "/api/devices/lock1/command", body={"value": True})
        sim.run()
        assert lock.get_state("locked") is True
        assert events and events[0]["device_id"] == "lock1"


class TestNest:
    def test_target_clamping(self):
        nest = NestThermostat(Address("nest.home"), "nest1")
        with pytest.raises(DeviceError):
            nest.set_target(50.0)
        with pytest.raises(DeviceError):
            nest.set_target(0.0)

    def test_cloud_push_on_sense(self):
        sim = Simulator()
        net = Network(sim, Rng(14))
        nest = net.add_node(NestThermostat(Address("nest.home"), "nest1"))

        class CloudStub(HttpNode):
            def __init__(self, address):
                super().__init__(address)
                self.events = []

            def on_non_http_message(self, message):
                if message.payload.get("event"):
                    self.events.append(message.payload)

        cloud = net.add_node(CloudStub(Address("nest.cloud")))
        net.connect(nest.address, cloud.address, FixedLatency(0.05))
        nest.subscribe(cloud.address)
        nest.sense_ambient(25.0)
        sim.run()
        assert cloud.events[0]["data"]["key"] == "ambient_c"

    def test_away_flag(self):
        nest = NestThermostat(Address("nest.home"), "nest1")
        nest.set_away(True)
        assert nest.get_state("home") is False


class TestDeviceCatalog:
    def test_more_than_twenty_smarthome_types(self):
        smarthome = device_types_by_category()[1]
        assert len(smarthome) > 20  # §1: "more than 20 types"

    def test_paper_examples_present(self):
        slugs = {d.slug for d in DEVICE_CATALOG}
        for expected in ("light", "camera", "thermostat", "lock", "garage_door",
                         "fridge", "sprinkler", "doorbell", "egg_tray", "washer"):
            assert expected in slugs

    def test_all_categories_iot(self):
        assert set(device_types_by_category()) <= {1, 2, 3, 4}
