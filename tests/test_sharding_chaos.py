"""End-to-end shard-isolation tests (docs/SHARDING.md).

The claim sharding exists to back up: a fault that lands on one shard —
a sink outage, an uplink partition, a flapping sensor — opens *that*
shard's breaker and inflates *that* shard's T2A, while every other
shard keeps delivering at baseline latency and the fleet-wide
conservation invariant (``dispatched == delivered + in_retry +
dead_lettered``) holds per shard and in the merged snapshot.

Shared runs (``sharded_outage_result`` and the fault-free baselines)
live in ``tests/conftest.py``.
"""

import pytest

from repro.faults import FaultPlan, link_down, service_outage
from repro.obs.metrics import snapshot_to_json_lines
from repro.testbed.chaos import (
    CHAOS_SCENARIOS,
    ENGINE_HOST,
    SENSOR_SLUG,
    SHARD_HOST_PATTERN,
    SINK_SLUG,
    ShardedChaosWorld,
    retarget_plan_for_shards,
    run_sharded_chaos_scenario,
)


def p95(values):
    ordered = sorted(values)
    assert ordered, "no T2A samples"
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


class TestOutageIsolation:
    def test_breaker_opens_only_on_victim_shard(self, sharded_outage_result):
        r = sharded_outage_result
        assert set(r.breaker_transitions_by_shard) == {r.victim_shard}

    def test_victim_breaker_recovers_through_half_open(self, sharded_outage_result):
        r = sharded_outage_result
        arcs = [(old, new) for _, _, old, new
                in r.breaker_transitions_by_shard[r.victim_shard]]
        assert ("closed", "open") in arcs
        assert ("open", "half_open") in arcs
        assert arcs[-1] == ("half_open", "closed")   # healed by the end

    def test_healthy_shards_match_unsharded_baseline(
        self, sharded_outage_result, nofault_result
    ):
        # The acceptance bar: while one shard takes a 60 s outage, the
        # other shards' T2A p95 stays within 5% of what a fault-free
        # single-engine world delivers.
        r = sharded_outage_result
        healthy = r.t2a_values(r.healthy_shards)
        baseline = [v for vs in nofault_result.t2a_by_phase.values() for v in vs]
        assert p95(healthy) <= p95(baseline) * 1.05

    def test_healthy_shards_match_sharded_nofault_run(
        self, sharded_outage_result, sharded_nofault_result
    ):
        r = sharded_outage_result
        healthy = r.t2a_values(r.healthy_shards)
        baseline = sharded_nofault_result.t2a_values(r.healthy_shards)
        assert p95(healthy) <= p95(baseline) * 1.05

    def test_damage_confined_to_victim(self, sharded_outage_result):
        r = sharded_outage_result
        victim = r.shard_stats[r.victim_shard]
        assert victim["dead_letters"] > 0
        assert victim["actions_shed"] > 0
        for shard in r.healthy_shards:
            stats = r.shard_stats[shard]
            assert stats["dead_letters"] == 0
            assert stats["actions_shed"] == 0
            assert stats["action_retries"] == 0

    def test_conservation_per_shard_and_fleet(self, sharded_outage_result):
        r = sharded_outage_result
        assert r.shard_silently_lost == [0] * r.num_shards
        assert r.actions_silently_lost == 0
        assert r.fleet_stats["actions_in_retry"] == 0

    def test_conservation_in_merged_snapshot(self, sharded_outage_result):
        # The merged engine.* counters must state the same invariant the
        # per-shard stats do — merging may not invent or lose actions.
        merged = sharded_outage_result.merged_engine_snapshot["metrics"]

        def total(name):
            return sum(e["value"] for e in merged if e["name"] == name)

        assert total("engine.actions_dispatched") == (
            total("engine.actions_delivered") + total("engine.dead_letters")
        )
        assert (total("engine.actions_dispatched")
                == sharded_outage_result.fleet_stats["actions_dispatched"])

    def test_every_event_observed(self, sharded_outage_result):
        r = sharded_outage_result
        assert r.events_injected == len(CHAOS_SCENARIOS["outage"].event_times) * 6
        assert r.events_observed == r.events_injected

    def test_summary_reports_fleet_and_victim(self, sharded_outage_result):
        text = sharded_outage_result.summary()
        assert "(victim)" in text
        assert "silently-lost=0" in text
        assert "shards=4" in text
        assert "breaker" in text


class TestPartitionIsolation:
    @pytest.fixture(scope="class")
    def partition_result(self):
        return run_sharded_chaos_scenario("partition", seed=7, num_shards=4)

    def test_victim_latency_inflates_healthy_does_not(
        self, partition_result, sharded_nofault_result
    ):
        r = partition_result
        victim = r.t2a_values([r.victim_shard])
        healthy = r.t2a_values(r.healthy_shards)
        assert p95(victim) >= 2 * p95(healthy)
        baseline = sharded_nofault_result.t2a_values(r.healthy_shards)
        assert p95(healthy) <= p95(baseline) * 1.05

    def test_partitioned_shard_catches_up_after_heal(self, partition_result):
        # Events buffer at the (healthy) sensors during the partition
        # and drain afterwards: everything is eventually delivered.
        r = partition_result
        assert r.actions_silently_lost == 0
        assert r.fleet_stats["actions_delivered"] == r.events_injected

    def test_breakers_open_only_on_victim(self, partition_result):
        r = partition_result
        assert set(r.breaker_transitions_by_shard) <= {r.victim_shard}
        assert r.shard_stats[r.victim_shard]["poll_failures"] > 0
        for shard in r.healthy_shards:
            assert r.shard_stats[shard]["poll_failures"] == 0


class TestFlappyIsolation:
    def test_flappy_soak_conserves_fleet_wide(self):
        r = run_sharded_chaos_scenario("flappy", seed=7, num_shards=4)
        assert r.actions_silently_lost == 0
        assert r.faults_activated == 1
        assert r.shard_stats[r.victim_shard]["poll_retries"] > 0
        healthy = r.t2a_values(r.healthy_shards)
        victim = r.t2a_values([r.victim_shard])
        assert p95(victim) > p95(healthy)
        for shard in r.healthy_shards:
            assert r.shard_stats[shard]["poll_retries"] == 0


class TestOtherStrategiesEndToEnd:
    @pytest.mark.parametrize("strategy", ["round_robin", "popularity_balanced"])
    def test_outage_conserves_under_strategy(self, strategy):
        r = run_sharded_chaos_scenario(
            "outage", seed=7, num_shards=4, shard_strategy=strategy)
        assert r.strategy == strategy
        assert r.actions_silently_lost == 0
        assert r.events_observed == r.events_injected
        assert set(r.breaker_transitions_by_shard) <= {r.victim_shard}


class TestPlanRetargeting:
    def test_service_refs_rewritten_to_victim_pair(self):
        plan = CHAOS_SCENARIOS["outage"].plan
        retargeted = retarget_plan_for_shards(
            plan, sensor_slug=f"{SENSOR_SLUG}0", sink_slug=f"{SINK_SLUG}0",
            engine_host=SHARD_HOST_PATTERN.format(shard=2))
        assert retargeted.services() == [f"{SINK_SLUG}0"]
        # Timing is untouched.
        assert [s.at for s in retargeted] == [s.at for s in plan]

    def test_engine_host_rewritten_to_victim_shard(self):
        plan = FaultPlan((link_down(ENGINE_HOST, "core.internet",
                                    at=10.0, duration=5.0),))
        retargeted = retarget_plan_for_shards(
            plan, sensor_slug=f"{SENSOR_SLUG}0", sink_slug=f"{SINK_SLUG}0",
            engine_host=SHARD_HOST_PATTERN.format(shard=1))
        spec = retargeted.specs[0]
        assert {spec.a, spec.b} == {"engine1.ifttt.cloud", "core.internet"}

    def test_unrelated_specs_pass_through(self):
        plan = FaultPlan((service_outage("weather", at=5.0, duration=5.0),))
        retargeted = retarget_plan_for_shards(
            plan, sensor_slug="x", sink_slug="y", engine_host="z")
        assert retargeted == plan

    def test_custom_unsharded_plan_drives_sharded_run(self):
        # A plan written in the single-engine vocabulary (e.g. from
        # --faults PLAN.json) must work unchanged against a fleet.
        plan = FaultPlan((service_outage(SINK_SLUG, at=20.0, duration=10.0),))
        r = run_sharded_chaos_scenario("outage", seed=7, num_shards=4, plan=plan)
        assert r.faults_activated == 1
        assert r.actions_silently_lost == 0
        assert set(r.breaker_transitions_by_shard) <= {r.victim_shard}

    def test_world_exposes_victim_shard(self):
        world = ShardedChaosWorld(seed=7, num_shards=4)
        assert 0 <= world.victim_shard < 4
        assert world.victim_shard == world.fleet.shard_for_trigger_service(
            f"{SENSOR_SLUG}0")

    def test_world_not_collected_by_pytest(self):
        assert ShardedChaosWorld.__test__ is False


class TestShardedDeterminism:
    def test_same_seed_same_snapshot_bytes(self):
        a = run_sharded_chaos_scenario("outage", seed=13, num_shards=4)
        b = run_sharded_chaos_scenario("outage", seed=13, num_shards=4)
        assert snapshot_to_json_lines(a.snapshot) == snapshot_to_json_lines(b.snapshot)
        assert a.t2a_by_shard == b.t2a_by_shard
        assert a.breaker_transitions_by_shard == b.breaker_transitions_by_shard
        assert a.assignments == b.assignments

    def test_shard_count_changes_snapshot(self):
        a = run_sharded_chaos_scenario("outage", seed=13, num_shards=2)
        b = run_sharded_chaos_scenario("outage", seed=13, num_shards=4)
        assert snapshot_to_json_lines(a.snapshot) != snapshot_to_json_lines(b.snapshot)

    def test_wallclock_gauges_filtered(self, sharded_outage_result):
        names = {e["name"] for e in sharded_outage_result.snapshot["metrics"]}
        assert "sim.events_per_wallsec" not in names

    def test_events_spread_across_all_shards(self, sharded_outage_result):
        # Six sensor slugs hash onto all four shards — "the other
        # shards" is never vacuous in the isolation assertions above.
        r = sharded_outage_result
        assert sorted(set(r.assignments.values())) == [0, 1, 2, 3]
        assert all(load > 0 for load in r.shard_loads)
