"""Tests for engine resilience: retry policy, breakers, dead letters."""

import pytest

from repro.engine import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
)
from repro.net.http import HttpError
from repro.simcore import Rng

from tests.helpers import build_engine_world, default_engine_config, install_ping_applet


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0, jitter=0.0)
        assert [policy.backoff(n) for n in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_delay=10.0, jitter=0.1)
        rng = Rng(3)
        for _ in range(50):
            assert 9.0 <= policy.backoff(1, rng) <= 11.0

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy()
        a = [policy.backoff(1, Rng(9)) for _ in range(1)]
        b = [policy.backoff(1, Rng(9)) for _ in range(1)]
        assert a == b

    def test_exhausted(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        for t in (1.0, 2.0):
            breaker.record_failure(t)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(3.0)
        assert breaker.state is BreakerState.OPEN

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        breaker.record_success(3.0)
        breaker.record_failure(4.0)
        breaker.record_failure(5.0)
        assert breaker.state is BreakerState.CLOSED

    def test_sheds_while_open(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, recovery_timeout=10.0))
        breaker.record_failure(0.0)
        assert not breaker.allow(5.0)
        assert breaker.shed_count == 1

    def test_half_open_after_recovery_timeout(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, recovery_timeout=10.0))
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)           # the probe
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_limits_probes(self):
        breaker = CircuitBreaker(BreakerPolicy(
            failure_threshold=1, recovery_timeout=10.0, half_open_probes=1))
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        assert not breaker.allow(10.5)       # only one probe in flight

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, recovery_timeout=10.0))
        breaker.record_failure(0.0)
        breaker.allow(10.0)
        breaker.record_failure(10.5)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(15.0)       # timer restarted from 10.5
        assert breaker.allow(20.5)

    def test_half_open_success_closes(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, recovery_timeout=10.0))
        breaker.record_failure(0.0)
        breaker.allow(10.0)
        breaker.record_success(10.5)
        assert breaker.state is BreakerState.CLOSED

    def test_reopen_half_open_cycle_restarts_each_window(self):
        # Regression: the recovery window after HALF_OPEN -> OPEN must be
        # measured from the *re-open*, not the original trip — and again
        # on every subsequent cycle.
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, recovery_timeout=10.0))
        breaker.record_failure(0.0)                      # cycle 1: open at 0
        assert breaker.allow(10.0)                       # probe 1
        breaker.record_failure(12.0)                     # re-open at 12
        assert breaker._opened_at == 12.0
        assert not breaker.allow(21.9)                   # 10 s from 12, not 0
        assert breaker.allow(22.0)                       # probe 2
        breaker.record_failure(25.0)                     # re-open again at 25
        assert breaker._opened_at == 25.0
        assert not breaker.allow(34.9)
        assert breaker.allow(35.0)                       # probe 3
        breaker.record_success(35.5)
        assert breaker.state is BreakerState.CLOSED

    def test_opened_at_cleared_on_close(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, recovery_timeout=10.0))
        breaker.record_failure(0.0)
        assert breaker._opened_at == 0.0
        breaker.allow(10.0)
        breaker.record_success(10.5)
        assert breaker._opened_at is None                # no stale clock

    def test_stale_failures_ignored_while_open(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, recovery_timeout=10.0))
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)          # in-flight straggler
        assert breaker.allow(10.0)           # timer was NOT restarted

    def test_transition_log_and_hook(self):
        seen = []
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, recovery_timeout=10.0),
            on_transition=lambda old, new, at: seen.append((old.value, new.value, at)),
        )
        breaker.record_failure(1.0)
        breaker.allow(11.0)
        breaker.record_success(11.5)
        assert [s[:2] for s in seen] == [
            ("closed", "open"), ("open", "half_open"), ("half_open", "closed")]
        assert breaker.transitions[0][0] == 1.0


def build_world(retry_policy=RetryPolicy(), breaker_policy=BreakerPolicy(),
                seed=11):
    """Thin wrapper over :func:`tests.helpers.build_engine_world`.

    Pins this suite's historical seeds (network ``seed``, engine
    ``seed + 1``) and tight 5 s timeouts — the exact retry/shed counts
    asserted below depend on both.
    """
    world = build_engine_world(
        config=default_engine_config(
            poll_timeout=5.0, action_timeout=5.0,
            retry_policy=retry_policy, breaker_policy=breaker_policy,
        ),
        net_seed=seed,
        engine_seed=seed + 1,
        with_trace=False,
    )
    install_ping_applet(world.engine, {"n": "{{n}}"}, name="ping->record")
    # Let the registration poll run so the trigger identity exists —
    # events ingested before registration are invisible, per protocol.
    world.sim.run_until(2.0)
    return world.sim, world.net, world.engine, world.service, world.executed


class TestPollRetries:
    def test_failed_poll_retried_on_backoff(self):
        sim, _, engine, service, _ = build_world()
        service.set_outage(True)
        # The poll at ~10.5 fails; retries at ~+1, +2, +4 s exhaust the
        # 4-attempt budget well before the 10 s regular cadence.
        sim.run_until(20.0)
        assert engine.poll_failures == 4
        assert engine.poll_retries == 3

    def test_retries_disabled_when_policy_none(self):
        sim, _, engine, service, _ = build_world(retry_policy=None)
        service.set_outage(True)
        sim.run_until(20.0)
        assert engine.poll_failures == 1     # only the regular poll
        assert engine.poll_retries == 0

    def test_breaker_opens_and_sheds_polls(self):
        sim, _, engine, service, _ = build_world()
        service.set_outage(True)
        sim.run_until(55.0)
        breaker = engine.breaker_for("svc")
        assert breaker.state is BreakerState.OPEN
        assert engine.polls_shed > 0
        assert engine.breaker_states() == {"svc": "open"}

    def test_breakers_disabled_when_policy_none(self):
        sim, _, engine, service, _ = build_world(breaker_policy=None)
        service.set_outage(True)
        sim.run_until(60.0)
        assert engine.breaker_for("svc") is None
        assert engine.polls_shed == 0
        assert engine.poll_failures > 5      # nothing shed, every poll fails


class TestActionRetries:
    def test_transient_action_failure_retried_to_success(self):
        sim, _, engine, service, executed = build_world()
        failures = [2]                       # fail the first two attempts

        def flaky(fields):
            if failures[0] > 0:
                failures[0] -= 1
                raise HttpError(500, "hiccup")
            executed.append(dict(fields))

        service._actions["record"].executor = flaky
        service.ingest_event("ping", {"n": 1})
        sim.run_until(30.0)
        assert [f["n"] for f in executed] == ["1"]
        assert engine.action_retries == 2
        assert engine.actions_delivered == 1
        assert engine.dead_letters == []
        assert engine.actions_in_retry == 0

    def test_persistent_failure_dead_letters(self):
        sim, _, engine, service, executed = build_world()

        def exploding(fields):
            raise HttpError(500, "busted")

        service._actions["record"].executor = exploding
        service.ingest_event("ping", {"n": 2})
        sim.run_until(60.0)
        assert executed == []
        assert len(engine.dead_letters) == 1
        letter = engine.dead_letters[0]
        assert letter.service_slug == "svc"
        assert letter.attempts == 4          # initial + 3 retries
        assert letter.last_status == 500
        assert letter.reason == "max_attempts_exhausted"
        assert engine.actions_in_retry == 0
        assert engine.stats()["dead_letters"] == 1

    def test_no_retries_means_immediate_dead_letter(self):
        sim, _, engine, service, executed = build_world(retry_policy=None)

        def exploding(fields):
            raise HttpError(500, "busted")

        service._actions["record"].executor = exploding
        service.ingest_event("ping", {"n": 3})
        sim.run_until(30.0)
        assert len(engine.dead_letters) == 1
        assert engine.dead_letters[0].attempts == 1
        assert engine.dead_letters[0].reason == "retries_disabled"

    def test_open_breaker_sheds_action_attempts(self):
        sim, _, engine, service, executed = build_world()
        service.set_outage(True)
        sim.run_until(55.0)                  # breaker open by now
        assert engine.breaker_for("svc").state is BreakerState.OPEN
        # An event polled... cannot arrive while the trigger service is
        # down; dispatch directly against the open breaker instead.
        from repro.engine.resilience import PendingAction
        record = PendingAction(
            applet_id=1, service_slug="svc", action_slug="record",
            fields={"n": "4"}, user="alice", event_id=999, created_at=sim.now,
        )
        engine._send_action(record)
        sim.run_until(90.0)
        assert engine.actions_shed >= 1
        # attempts burned through shed + retries; never delivered silently
        assert len(engine.dead_letters) == 1 or engine.actions_delivered == 1

    def test_uninstall_cancels_outstanding_retries(self):
        # Regression: uninstall_applet cancelled the pending poll but
        # left action-retry timers armed — a retry firing later would
        # deliver for a removed applet and corrupt actions_in_retry.
        sim, _, engine, service, executed = build_world()

        def exploding(fields):
            raise HttpError(500, "busted")

        service._actions["record"].executor = exploding
        service.ingest_event("ping", {"n": 9})
        sim.run_until(11.0)                  # first attempt failed, retry armed
        assert engine.actions_in_retry == 1
        applet_id = engine.applets[0].applet_id
        engine.uninstall_applet(applet_id)
        assert engine.actions_in_retry == 0
        assert len(engine.dead_letters) == 1
        assert engine.dead_letters[0].reason == "applet_removed"
        sim.run_until(120.0)                 # the cancelled timer never fires
        assert executed == []
        assert engine.actions_in_retry == 0
        assert len(engine.dead_letters) == 1
        stats = engine.stats()
        assert stats["actions_dispatched"] == (
            stats["actions_delivered"] + stats["dead_letters"]
        )

    def test_conservation_no_silent_loss(self):
        sim, _, engine, service, executed = build_world()
        toggles = [0]

        def sometimes(fields):
            toggles[0] += 1
            if toggles[0] % 3 == 0:
                raise HttpError(500, "every third fails")
            executed.append(dict(fields))

        service._actions["record"].executor = sometimes
        for n in range(12):
            sim.schedule(n * 7.0, service.ingest_event, "ping", {"n": n})
        sim.run_until(300.0)
        stats = engine.stats()
        assert stats["actions_dispatched"] == (
            stats["actions_delivered"] + stats["dead_letters"]
        )
        assert stats["actions_in_retry"] == 0


class TestHealthyRunsUnchanged:
    def test_resilience_config_is_inert_when_healthy(self):
        """With no failures, retries/breakers must not alter behaviour."""
        def run(retry_policy, breaker_policy):
            sim, _, engine, service, executed = build_world(
                retry_policy=retry_policy, breaker_policy=breaker_policy)
            for n in range(5):
                sim.schedule(n * 13.0, service.ingest_event, "ping", {"n": n})
            sim.run_until(120.0)
            return [f["n"] for f in executed], engine.polls_sent, sim.now

        with_resilience = run(RetryPolicy(), BreakerPolicy())
        without = run(None, None)
        assert with_resilience == without
