"""Integration tests for the IFTTT engine against a live partner service."""

import pytest

from repro.engine import ActionRef, EngineConfig, FixedPollingPolicy, TriggerRef
from repro.engine.oauth import OAuthAuthority
from repro.net import Address
from repro.services import PartnerService

from tests.helpers import build_engine_world, install_ping_applet


def build_world(config=None, realtime_service=False):
    """One engine + one service with a trigger and a recording action.

    Thin wrapper over :func:`tests.helpers.build_engine_world`, pinning
    this suite's historical seeds (network 55, engine 7) and its
    timestamped delivery log.
    """
    world = build_engine_world(
        config=config,
        net_seed=55,
        engine_seed=7,
        realtime_service=realtime_service,
        record_times=True,
    )
    return world.sim, world.engine, world.service, world.executed, world.trace


class TestPublication:
    def test_publish_issues_key(self):
        sim, engine, service, _, _ = build_world()
        assert service.service_key is not None
        assert engine.service_registration("svc").service_key == service.service_key

    def test_double_publish_rejected(self):
        sim, engine, service, _, _ = build_world()
        with pytest.raises(ValueError):
            engine.publish_service(service)

    def test_connect_unpublished_service_rejected(self):
        sim, engine, _, _, _ = build_world()
        stranger = PartnerService(Address("other.cloud"), slug="other")
        with pytest.raises(KeyError):
            engine.connect_service("alice", stranger, OAuthAuthority("other"), "pw")

    def test_connect_caches_token_and_grants(self):
        sim, engine, service, _, _ = build_world()
        token = engine.tokens.lookup("alice", "svc")
        assert token is not None
        assert engine.permissions.granted("alice")


class TestAppletLifecycle:
    def test_install_requires_published_services(self):
        sim, engine, _, _, _ = build_world()
        with pytest.raises(KeyError):
            engine.install_applet(
                user="alice", name="bad",
                trigger=TriggerRef("ghost", "t"), action=ActionRef("svc", "record"),
            )

    def test_install_assigns_six_digit_ids(self):
        sim, engine, _, _, _ = build_world()
        applet = install_ping_applet(engine)
        assert 100000 <= applet.applet_id <= 999999

    def test_initial_poll_registers_identity(self):
        sim, engine, service, _, _ = build_world()
        applet = install_ping_applet(engine)
        sim.run_until(5.0)
        assert applet.trigger_identity in service.known_identities

    def test_end_to_end_execution(self):
        sim, engine, service, executed, _ = build_world()
        install_ping_applet(engine)
        sim.run_until(5.0)
        service.ingest_event("ping", {"n": 42})
        sim.run_until(30.0)
        assert executed
        assert executed[0][1] == {"note": "42"}

    def test_dedupe_across_polls(self):
        sim, engine, service, executed, _ = build_world()
        install_ping_applet(engine)
        sim.run_until(5.0)
        service.ingest_event("ping", {"n": 1})
        sim.run_until(60.0)  # several polls see the same buffered event
        assert len(executed) == 1

    def test_multiple_events_in_one_poll_all_execute(self):
        sim, engine, service, executed, _ = build_world()
        install_ping_applet(engine)
        sim.run_until(5.0)
        for n in range(5):
            service.ingest_event("ping", {"n": n})
        sim.run_until(30.0)
        assert len(executed) == 5
        # chronological dispatch order
        notes = [fields["note"] for _, fields in executed]
        assert notes == ["0", "1", "2", "3", "4"]

    def test_batch_limit_respected(self):
        config = EngineConfig(poll_policy=FixedPollingPolicy(10.0),
                              initial_poll_delay=0.5, batch_limit=3)
        sim, engine, service, executed, _ = build_world(config=config)
        install_ping_applet(engine)
        sim.run_until(5.0)
        for n in range(10):
            service.ingest_event("ping", {"n": n})
        sim.run_until(14.0)  # one poll
        assert len(executed) == 3  # only the newest k=3 delivered

    def test_disable_stops_polling(self):
        sim, engine, service, executed, _ = build_world()
        applet = install_ping_applet(engine)
        sim.run_until(5.0)
        polls_before = engine.polls_sent
        engine.disable_applet(applet.applet_id)
        service.ingest_event("ping", {"n": 1})
        sim.run_until(120.0)
        assert engine.polls_sent == polls_before
        assert executed == []

    def test_enable_resumes(self):
        sim, engine, service, executed, _ = build_world()
        applet = install_ping_applet(engine)
        sim.run_until(5.0)
        engine.disable_applet(applet.applet_id)
        sim.run_until(10.0)
        engine.enable_applet(applet.applet_id)
        service.ingest_event("ping", {"n": 9})
        sim.run_until(60.0)
        assert executed

    def test_enable_when_already_enabled_is_noop(self):
        sim, engine, service, _, _ = build_world()
        applet = install_ping_applet(engine)
        engine.enable_applet(applet.applet_id)
        assert applet.enabled

    def test_poll_count_tracked(self):
        sim, engine, service, _, _ = build_world()
        applet = install_ping_applet(engine)
        sim.run_until(35.0)
        assert engine.poll_count(applet.applet_id) >= 3

    def test_applets_listing(self):
        sim, engine, _, _, _ = build_world()
        a = install_ping_applet(engine)
        b = install_ping_applet(engine)
        assert {x.applet_id for x in engine.applets} == {a.applet_id, b.applet_id}
        assert engine.applet(a.applet_id) is a


class TestRealtimeHints:
    def test_allowlisted_service_hint_causes_immediate_poll(self):
        config = EngineConfig(
            poll_policy=FixedPollingPolicy(300.0),
            initial_poll_delay=0.5,
            realtime_allowlist=frozenset({"svc"}),
        )
        sim, engine, service, executed, _ = build_world(config=config, realtime_service=True)
        install_ping_applet(engine)
        sim.run_until(5.0)
        service.ingest_event("ping", {"n": 1})
        sim.run_until(10.0)  # far below the 300 s poll interval
        assert executed
        assert engine.realtime_hints_honoured >= 1

    def test_non_allowlisted_hint_ignored(self):
        config = EngineConfig(
            poll_policy=FixedPollingPolicy(300.0),
            initial_poll_delay=0.5,
            realtime_allowlist=frozenset(),
        )
        sim, engine, service, executed, _ = build_world(config=config, realtime_service=True)
        install_ping_applet(engine)
        sim.run_until(5.0)
        service.ingest_event("ping", {"n": 1})
        sim.run_until(10.0)
        assert executed == []  # hint received but not honoured
        assert engine.realtime_hints_received >= 1
        assert engine.realtime_hints_honoured == 0

    def test_none_allowlist_honours_everyone(self):
        config = EngineConfig(
            poll_policy=FixedPollingPolicy(300.0),
            initial_poll_delay=0.5,
            realtime_allowlist=None,
        )
        assert config.honours_realtime_for("anything")
        sim, engine, service, executed, _ = build_world(config=config, realtime_service=True)
        install_ping_applet(engine)
        sim.run_until(5.0)
        service.ingest_event("ping", {"n": 1})
        sim.run_until(10.0)
        assert executed


class TestEngineTrace:
    def test_poll_and_action_records(self):
        sim, engine, service, _, trace = build_world()
        install_ping_applet(engine)
        sim.run_until(5.0)
        service.ingest_event("ping", {"n": 1})
        sim.run_until(30.0)
        assert trace.query(kind="engine_poll_sent")
        assert trace.query(kind="engine_poll_response")
        assert trace.query(kind="engine_action_sent")
        assert trace.query(kind="engine_action_ack")


class TestConfigValidation:
    def test_invalid_batch_limit(self):
        with pytest.raises(ValueError):
            EngineConfig(batch_limit=0)

    def test_invalid_dedupe_window(self):
        with pytest.raises(ValueError):
            EngineConfig(dedupe_window=-1)
