"""Unit tests for epoch-barriered parallel stepping plus ISSUE 10's
simcore regressions.

Three bugfix regressions ride along with the :class:`ShardedSimulator`
unit coverage, each written to fail against the pre-fix code:

* ``run_until`` used to fast-forward ``now`` to the horizon even when it
  broke on ``max_events`` with live events still pending at ``t <= T`` —
  the resumed run then died with "event heap corrupted: time went
  backwards".
* shard applet-id ranges used to collide silently once a shard allocated
  past its stride; now every engine enforces its range with
  :class:`AppletIdRangeError` and fleets derive a stride wide enough for
  the whole corpus.
* ``Simulator.pending`` used to scan the heap (O(n) per call); it is now
  an O(1) live counter, pinned here against the scan on every mutation
  path (schedule / fire / cancel / cancel-after-fire).

The end-to-end serial-vs-parallel equivalence suite lives in
``tests/test_parallel_equivalence.py``.
"""

import pytest

from repro.engine import (
    ActionRef,
    AppletIdRangeError,
    EngineConfig,
    FixedPollingPolicy,
    IftttEngine,
    ShardedEngine,
    TriggerRef,
)
from repro.engine.oauth import OAuthAuthority
from repro.engine.sharding import APPLET_ID_STRIDE, derive_applet_id_stride
from repro.net import Address, FixedLatency, Network
from repro.services import ActionEndpoint, PartnerService, TriggerEndpoint
from repro.simcore import (
    DEFAULT_LOOKAHEAD,
    Rng,
    ShardedSimulator,
    SimulationError,
    Simulator,
)


# -- regression: run_until must not fast-forward past pending events ----------


class TestRunUntilCapRegression:
    def test_cap_break_leaves_clock_at_last_fired_event(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.schedule_at(t, fired.append, t)
        result = sim.run_until(10.0, max_events=2)
        assert result == 2
        assert not result.completed
        assert fired == [1.0, 2.0]
        # The bug: now jumped to 10.0 here, stranding the t=3,4 events
        # in the past.
        assert sim.now == 2.0

    def test_resume_after_cap_break_fires_stranded_events(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.schedule_at(t, fired.append, t)
        sim.run_until(10.0, max_events=2)
        # Pre-fix this raised SimulationError("event heap corrupted:
        # time went backwards") because now was already 10.0.
        result = sim.run_until(10.0)
        assert result == 2
        assert result.completed
        assert fired == [1.0, 2.0, 3.0, 4.0]
        assert sim.now == 10.0

    def test_drained_horizon_still_advances_clock(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        result = sim.run_until(5.0)
        assert result == 1
        assert result.completed
        assert sim.now == 5.0

    def test_empty_run_completes_and_advances(self):
        sim = Simulator()
        result = sim.run_until(3.0)
        assert result == 0
        assert result.completed
        assert sim.now == 3.0

    def test_cap_equal_to_pending_count_completes(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        result = sim.run_until(5.0, max_events=2)
        assert result.completed
        assert sim.now == 5.0

    def test_stop_mid_run_does_not_fast_forward(self):
        sim = Simulator()
        sim.schedule_at(1.0, sim.stop)
        sim.schedule_at(2.0, lambda: None)
        result = sim.run_until(10.0)
        assert result == 1
        assert not result.completed
        assert sim.now == 1.0
        resumed = sim.run_until(10.0)
        assert resumed == 1
        assert resumed.completed

    def test_result_is_int_compatible(self):
        # Callers sum run_until returns; RunResult must behave as int.
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        result = sim.run_until(2.0)
        assert result + 1 == 2
        assert isinstance(result, int)


# -- regression: pending is an O(1) counter equal to the heap scan ------------


def live_scan(sim: Simulator) -> int:
    """The O(n) truth the counter must track."""
    return sum(1 for event in sim._heap if not event.canceled)


class TestPendingCounter:
    def test_schedule_fire_cancel_paths(self):
        sim = Simulator()
        events = [sim.schedule(float(i), lambda: None) for i in range(10)]
        assert sim.pending == live_scan(sim) == 10
        events[3].cancel()
        events[7].cancel()
        assert sim.pending == live_scan(sim) == 8
        sim.run_until(4.0)  # fires t=0..4 minus the canceled t=3
        assert sim.pending == live_scan(sim) == 4
        sim.run()
        assert sim.pending == live_scan(sim) == 0

    def test_double_cancel_decrements_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending == live_scan(sim) == 0

    def test_cancel_after_fire_does_not_underflow(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run_until(1.5)
        event.cancel()  # already fired; must not touch the counter
        assert sim.pending == live_scan(sim) == 1

    def test_cancel_from_inside_callback(self):
        sim = Simulator()
        later = sim.schedule(2.0, lambda: None)
        sim.schedule(1.0, later.cancel)
        sim.schedule(3.0, lambda: None)
        sim.run_until(1.0)
        assert sim.pending == live_scan(sim) == 1


# -- regression: shard applet-id ranges are enforced, not colliding -----------


def build_engine(limit=None, start=100000):
    sim = Simulator()
    rng = Rng(seed=3, name="range-test")
    net = Network(sim, rng.fork("net"))
    engine = net.add_node(IftttEngine(
        Address("engine.cloud"),
        config=EngineConfig(
            poll_policy=FixedPollingPolicy(5.0), initial_poll_delay=0.5,
        ),
        rng=rng.fork("engine"),
        service_time=0.0,
        applet_id_start=start,
        applet_id_limit=limit,
    ))
    service = net.add_node(PartnerService(
        Address("svc.cloud"), slug="svc", service_time=0.0,
    ))
    service.add_trigger(TriggerEndpoint(slug="ping", name="Ping"))
    service.add_action(ActionEndpoint(
        slug="record", name="Record", executor=lambda fields: None,
    ))
    net.connect(engine.address, service.address, FixedLatency(0.01))
    engine.publish_service(service)
    authority = OAuthAuthority("svc")
    authority.register_user("alice", "pw")
    engine.connect_service("alice", service, authority, "pw")
    return engine


def install(engine, n=1):
    applets = []
    for i in range(n):
        applets.append(engine.install_applet(
            user="alice", name=f"applet#{i}",
            trigger=TriggerRef("svc", "ping"),
            action=ActionRef("svc", "record", {"n": "{{n}}"}),
        ))
    return applets


class TestAppletIdRangeEnforcement:
    def test_overflowing_the_range_raises_loudly(self):
        engine = build_engine(limit=2)
        install(engine, 2)
        # Pre-fix the third id (100002) silently bled into the next
        # shard's range.
        with pytest.raises(AppletIdRangeError, match=r"\[100000, 100002\)"):
            install(engine, 1)

    def test_unlimited_engine_keeps_allocating(self):
        engine = build_engine(limit=None)
        applets = install(engine, 5)
        assert [a.applet_id for a in applets] == list(range(100000, 100005))

    def test_failed_install_does_not_register_the_applet(self):
        engine = build_engine(limit=1)
        install(engine, 1)
        before = engine.stats()["applets"]
        with pytest.raises(AppletIdRangeError):
            install(engine, 1)
        assert engine.stats()["applets"] == before

    def test_derive_stride_floor(self):
        assert derive_applet_id_stride(None) == APPLET_ID_STRIDE
        assert derive_applet_id_stride(100) == APPLET_ID_STRIDE
        assert derive_applet_id_stride(APPLET_ID_STRIDE) == APPLET_ID_STRIDE

    def test_derive_stride_covers_the_whole_corpus(self):
        # service_hash can land an entire heavy-tailed corpus on one
        # shard, so the stride must cover all of it, not corpus/shards.
        assert derive_applet_id_stride(100001) == 1_000_000
        assert derive_applet_id_stride(250_000) == 1_000_000
        assert derive_applet_id_stride(1_000_000) == 1_000_000
        assert derive_applet_id_stride(1_000_001) == 10_000_000

    def test_sharded_engine_ranges_are_disjoint(self):
        sim = Simulator()
        rng = Rng(seed=5, name="fleet-range")
        net = Network(sim, rng.fork("net"))
        fleet = ShardedEngine(
            net,
            config=EngineConfig(
                poll_policy=FixedPollingPolicy(5.0), initial_poll_delay=0.5,
                num_shards=4, shard_strategy="round_robin",
            ),
            rng=rng.fork("engine"),
            service_time=0.0,
            expected_applets=250_000,
        )
        assert fleet.applet_id_stride == 1_000_000
        service = net.add_node(PartnerService(
            Address("svc.cloud"), slug="svc", service_time=0.0,
        ))
        service.add_trigger(TriggerEndpoint(slug="ping", name="Ping"))
        service.add_action(ActionEndpoint(
            slug="record", name="Record", executor=lambda fields: None,
        ))
        for shard in fleet.shards:
            net.connect(shard.address, service.address, FixedLatency(0.01))
        fleet.publish_service(service)
        authority = OAuthAuthority("svc")
        authority.register_user("alice", "pw")
        fleet.connect_service("alice", service, authority, "pw")
        seen = set()
        for i in range(12):
            applet = fleet.install_applet(
                user="alice", name=f"a{i}",
                trigger=TriggerRef("svc", "ping"),
                action=ActionRef("svc", "record", {}),
            )
            shard = fleet.shard_of(applet.applet_id)
            start = 100000 + shard * fleet.applet_id_stride
            assert start <= applet.applet_id < start + fleet.applet_id_stride
            assert applet.applet_id not in seen
            seen.add(applet.applet_id)
            assert fleet.engine_for(applet.applet_id) is fleet.shards[shard]

    def test_tiny_stride_fleet_fails_loudly_not_silently(self):
        sim = Simulator()
        rng = Rng(seed=5, name="fleet-collide")
        net = Network(sim, rng.fork("net"))
        fleet = ShardedEngine(
            net,
            config=EngineConfig(
                poll_policy=FixedPollingPolicy(5.0), initial_poll_delay=0.5,
                num_shards=2, shard_strategy="service_hash",
            ),
            rng=rng.fork("engine"),
            service_time=0.0,
            applet_id_stride=2,
        )
        service = net.add_node(PartnerService(
            Address("svc.cloud"), slug="svc", service_time=0.0,
        ))
        service.add_trigger(TriggerEndpoint(slug="ping", name="Ping"))
        service.add_action(ActionEndpoint(
            slug="record", name="Record", executor=lambda fields: None,
        ))
        for shard in fleet.shards:
            net.connect(shard.address, service.address, FixedLatency(0.01))
        fleet.publish_service(service)
        authority = OAuthAuthority("svc")
        authority.register_user("alice", "pw")
        fleet.connect_service("alice", service, authority, "pw")
        kwargs = dict(
            user="alice",
            trigger=TriggerRef("svc", "ping"),
            action=ActionRef("svc", "record", {}),
        )
        fleet.install_applet(name="a0", **kwargs)
        fleet.install_applet(name="a1", **kwargs)
        with pytest.raises(AppletIdRangeError):
            fleet.install_applet(name="a2", **kwargs)


# -- ShardedSimulator unit tests ----------------------------------------------


class TestShardedSimulatorBasics:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardedSimulator(0)
        with pytest.raises(ValueError):
            ShardedSimulator(2, lookahead=0.0)
        with pytest.raises(ValueError):
            ShardedSimulator(2, jobs=0)

    def test_clock_is_the_slowest_shard(self):
        stepper = ShardedSimulator(3)
        stepper.sims[0].schedule_at(1.0, lambda: None)
        stepper.run_until(5.0)
        assert stepper.now == 5.0
        assert all(sim.now == 5.0 for sim in stepper.sims)

    def test_fired_and_pending_aggregate_across_shards(self):
        stepper = ShardedSimulator(2)
        stepper.sims[0].schedule_at(1.0, lambda: None)
        stepper.sims[1].schedule_at(2.0, lambda: None)
        stepper.sims[1].schedule_at(9.0, lambda: None)
        assert stepper.pending == 3
        stepper.run_until(5.0)
        assert stepper.fired_count == 2
        assert stepper.pending == 1

    def test_uncoupled_fleet_steps_in_one_epoch(self):
        stepper = ShardedSimulator(4)
        for sim in stepper.sims:
            sim.schedule_at(1.0, lambda: None)
        stepper.run_until(100.0)
        assert stepper.epochs == 1

    def test_coupled_fleet_honors_the_lookahead_barrier(self):
        stepper = ShardedSimulator(2, lookahead=1.0)
        stepper.mark_coupled()
        assert stepper.coupled
        stepper.run_until(10.0)
        # 10s of coupled time at a 1s epoch width = 10 barriers.
        assert stepper.epochs == 10

    def test_run_drains_heaps_and_mailboxes(self):
        stepper = ShardedSimulator(2)
        fired = []
        stepper.sims[0].schedule_at(
            1.0, lambda: stepper.post(1, 2.0, fired.append, "hop"),
        )
        stepper.run()
        assert fired == ["hop"]
        assert stepper.pending == 0


class TestMailboxes:
    def test_controller_post_lands_on_destination_shard(self):
        stepper = ShardedSimulator(3)
        fired = []
        stepper.post(2, 1.5, fired.append, "x")
        stepper.run_until(2.0)
        assert fired == ["x"]
        assert stepper.mailbox_messages == 1
        assert stepper.sims[2].fired_count == 1

    def test_broadcast_reaches_every_shard(self):
        stepper = ShardedSimulator(3)
        fired = []
        stepper.broadcast(1.0, fired.append, "all")
        stepper.run_until(2.0)
        assert fired == ["all"] * 3
        assert stepper.mailbox_messages == 3

    def test_drain_order_is_deliver_at_then_src_then_seq(self):
        stepper = ShardedSimulator(3)
        order = []
        # Same destination and deliver_at from different sources, posted
        # in scrambled order: the drain key must ignore append order.
        stepper.post(0, 2.0, order.append, "src1-a", src=1)
        stepper.post(0, 2.0, order.append, "src0-a", src=0)
        stepper.post(0, 1.0, order.append, "early", src=2)
        stepper.post(0, 2.0, order.append, "src1-b", src=1)
        stepper.run_until(3.0)
        assert order == ["early", "src0-a", "src1-a", "src1-b"]

    def test_lookahead_floor_violation_is_loud(self):
        stepper = ShardedSimulator(2, lookahead=0.5)
        stepper.mark_coupled()
        stepper.sims[1].schedule_at(4.0, lambda: None)
        stepper.run_until(4.0)
        # Shard 1's clock is now 4.0; a message for t=1.0 violates the
        # conservative contract and must not be silently reordered.
        stepper.post(1, 1.0, lambda: None, src=0)
        with pytest.raises(SimulationError, match="lookahead floor"):
            stepper.run_until(5.0)

    def test_cross_shard_ping_pong_serial_equals_parallel(self):
        def run(jobs):
            stepper = ShardedSimulator(2, lookahead=0.1, jobs=jobs)
            stepper.mark_coupled()
            trace = []

            def hop(shard, n):
                trace.append((round(stepper.sims[shard].now, 6), shard, n))
                if n < 20:
                    stepper.post(
                        1 - shard, stepper.sims[shard].now + 0.1,
                        hop, 1 - shard, n + 1, src=shard,
                    )

            stepper.post(0, 0.1, hop, 0, 0)
            stepper.run_until(5.0)
            stepper.shutdown()
            return trace, stepper.mailbox_messages, stepper.epochs

        serial = run(jobs=1)
        threaded = run(jobs=4)
        assert serial == threaded
        assert serial[0][0] == (0.1, 0, 0)
        assert len(serial[0]) == 21


class TestDefaultLookahead:
    def test_exported_and_positive(self):
        assert DEFAULT_LOOKAHEAD > 0
        assert ShardedSimulator(2).lookahead == DEFAULT_LOOKAHEAD
