"""Tests for the HTTP-like request/response layer."""

import pytest

from repro.net import Address, FixedLatency, HttpError, HttpNode, HttpResponse, Network
from repro.simcore import Rng, Simulator


def build_pair(service_time=0.0, latency=0.05):
    sim = Simulator()
    net = Network(sim, Rng(3))
    client = net.add_node(HttpNode(Address("client.test")))
    server = net.add_node(HttpNode(Address("server.test"), service_time=service_time))
    net.connect(client.address, server.address, FixedLatency(latency))
    return sim, client, server


class TestRouting:
    def test_basic_request_response(self):
        sim, client, server = build_pair()
        server.add_route("GET", "/hello", lambda req: {"msg": "hi"})
        got = []
        client.get(server.address, "/hello", on_response=got.append)
        sim.run()
        assert got[0].ok
        assert got[0].body == {"msg": "hi"}
        assert got[0].elapsed == pytest.approx(0.1)

    def test_unknown_path_is_404(self):
        sim, client, server = build_pair()
        got = []
        client.get(server.address, "/nope", on_response=got.append)
        sim.run()
        assert got[0].status == 404

    def test_longest_prefix_wins(self):
        sim, client, server = build_pair()
        server.add_route("POST", "/api/", lambda req: {"which": "general"})
        server.add_route("POST", "/api/special", lambda req: {"which": "special"})
        got = []
        client.post(server.address, "/api/special/thing", on_response=got.append)
        sim.run()
        assert got[0].body == {"which": "special"}

    def test_method_mismatch_is_404(self):
        sim, client, server = build_pair()
        server.add_route("POST", "/thing", lambda req: "ok")
        got = []
        client.get(server.address, "/thing", on_response=got.append)
        sim.run()
        assert got[0].status == 404

    def test_duplicate_route_rejected(self):
        sim, client, server = build_pair()
        server.add_route("GET", "/x", lambda req: 1)
        with pytest.raises(ValueError):
            server.add_route("GET", "/x", lambda req: 2)

    def test_remove_route(self):
        sim, client, server = build_pair()
        server.add_route("GET", "/x", lambda req: 1)
        server.remove_route("GET", "/x")
        got = []
        client.get(server.address, "/x", on_response=got.append)
        sim.run()
        assert got[0].status == 404


class TestHandlerReturnShapes:
    def test_bare_body_is_200(self):
        sim, client, server = build_pair()
        server.add_route("GET", "/x", lambda req: [1, 2, 3])
        got = []
        client.get(server.address, "/x", on_response=got.append)
        sim.run()
        assert got[0].status == 200 and got[0].body == [1, 2, 3]

    def test_status_body_tuple(self):
        sim, client, server = build_pair()
        server.add_route("GET", "/x", lambda req: (418, {"teapot": True}))
        got = []
        client.get(server.address, "/x", on_response=got.append)
        sim.run()
        assert got[0].status == 418

    def test_full_response_object(self):
        sim, client, server = build_pair()
        server.add_route("GET", "/x", lambda req: HttpResponse(status=201, body="made"))
        got = []
        client.get(server.address, "/x", on_response=got.append)
        sim.run()
        assert got[0].status == 201

    def test_http_error_becomes_status(self):
        def handler(req):
            raise HttpError(401, "bad key")

        sim, client, server = build_pair()
        server.add_route("POST", "/auth", handler)
        got = []
        client.post(server.address, "/auth", on_response=got.append)
        sim.run()
        assert got[0].status == 401
        assert "bad key" in got[0].body["error"]


class TestTimeoutsAndTiming:
    def test_timeout_produces_599(self):
        # A reachable but too-slow server: the response arrives after the
        # client has given up, so the timeout must fire.
        sim, client, server = build_pair(service_time=10.0)
        server.add_route("GET", "/x", lambda req: "ok")
        got = []
        client.get(server.address, "/x", on_response=got.append, timeout=5.0)
        sim.run()
        assert got[0].timed_out
        assert got[0].status == 599
        assert client.timeouts == 1

    def test_unreachable_destination_is_immediate_503(self):
        sim = Simulator()
        net = Network(sim, Rng(3))
        client = net.add_node(HttpNode(Address("client.test")))
        server = net.add_node(HttpNode(Address("server.test")))
        # no link: the network reports the missing route synchronously,
        # so the client gets a connection-refused 503 right away instead
        # of waiting out the 5 s timeout.
        got = []
        client.get(server.address, "/x", on_response=got.append, timeout=5.0)
        sim.run()
        assert sim.now < 1.0
        assert got[0].status == 503
        assert not got[0].timed_out
        assert got[0].body["error"] == "connection refused"
        assert client.connection_refused == 1
        assert client.timeouts == 0

    def test_refusal_callback_is_asynchronous(self):
        sim = Simulator()
        net = Network(sim, Rng(3))
        client = net.add_node(HttpNode(Address("client.test")))
        server = net.add_node(HttpNode(Address("server.test")))
        got = []
        req = client.get(server.address, "/x", on_response=got.append)
        # the callback is deferred by one zero-delay event — callers
        # never observe the response before request() has returned
        assert got == []
        sim.run()
        assert got[0].request_id == req.request_id

    def test_late_response_after_timeout_is_counted_not_redelivered(self):
        # Server answers at t≈10.1 but the client gave up at t=5: the
        # straggler must be counted as late, and the callback must not
        # fire a second time.
        sim, client, server = build_pair(service_time=10.0)
        server.add_route("GET", "/x", lambda req: "ok")
        got = []
        client.get(server.address, "/x", on_response=got.append, timeout=5.0)
        sim.run()
        assert len(got) == 1          # only the synthetic 599
        assert got[0].status == 599
        assert client.timeouts == 1
        assert client.late_responses == 1
        # the id was forgotten once matched; a hypothetical duplicate
        # straggler would not double-count
        assert len(client._timed_out_ids) == 0

    def test_response_cancels_timeout(self):
        sim, client, server = build_pair()
        server.add_route("GET", "/x", lambda req: "ok")
        got = []
        client.get(server.address, "/x", on_response=got.append, timeout=5.0)
        sim.run()
        assert len(got) == 1 and got[0].ok
        assert client.timeouts == 0

    def test_service_time_adds_delay(self):
        sim, client, server = build_pair(service_time=1.0, latency=0.1)
        server.add_route("GET", "/slow", lambda req: "ok")
        got = []
        client.get(server.address, "/slow", on_response=got.append)
        sim.run()
        assert got[0].elapsed == pytest.approx(1.2)

    def test_fire_and_forget_request(self):
        sim, client, server = build_pair()
        hits = []
        server.add_route("POST", "/notify", lambda req: hits.append(req.body) or "ok")
        client.post(server.address, "/notify", body={"n": 1})
        sim.run()
        assert hits == [{"n": 1}]
        assert client.timeouts == 0

    def test_counters(self):
        sim, client, server = build_pair()
        server.add_route("GET", "/x", lambda req: "ok")
        client.get(server.address, "/x")
        sim.run()
        assert client.requests_issued == 1
        assert server.requests_served == 1


class TestHeadersAndBody:
    def test_headers_reach_handler(self):
        sim, client, server = build_pair()
        seen = {}
        server.add_route("POST", "/x", lambda req: seen.update(req.headers) or "ok")
        client.post(server.address, "/x", headers={"IFTTT-Service-Key": "k1"})
        sim.run()
        assert seen["IFTTT-Service-Key"] == "k1"

    def test_header_helper_default(self):
        sim, client, server = build_pair()
        got = []
        server.add_route("GET", "/x", lambda req: {"auth": req.header("Authorization", "none")})
        client.get(server.address, "/x", on_response=got.append)
        sim.run()
        assert got[0].body == {"auth": "none"}
