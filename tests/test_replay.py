"""Tests for dead-letter replay with batched action dispatch.

Covers the full loop ``docs/ROBUSTNESS.md`` ("Replay & batching")
describes: a service fails, actions dead-letter, the service heals, its
letters drain back into pending actions and re-dispatch — coalesced
into ``POST /ifttt/v1/actions/batch`` requests of up to ``batch_limit``
actions — and the extended conservation invariant

    dispatched == delivered + in_retry + dead_lettered + in_replay

holds at every step, per shard and in the merged fleet snapshot.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    BreakerPolicy,
    BreakerState,
    FixedPollingPolicy,
    ReplayPolicy,
    RetryPolicy,
)
from repro.net.http import HttpError
from repro.services.partner import BatchActionRequest
from repro.testbed.chaos import run_chaos_scenario, run_sharded_chaos_scenario

from tests.helpers import build_engine_world, default_engine_config, install_ping_applet


class TestReplayPolicy:
    def test_defaults_match_paper_limit(self):
        policy = ReplayPolicy()
        assert policy.batch_limit == 50
        assert policy.batching
        assert policy.replay_on_heal

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplayPolicy(batch_limit=0)
        with pytest.raises(ValueError):
            ReplayPolicy(drain_delay=-1.0)


class TestBatchActionRequest:
    def test_body_round_trip(self):
        batch = BatchActionRequest(entries=(
            {"action_slug": "record", "actionFields": {"n": "1"}, "user": "alice"},
            {"action_slug": "record", "actionFields": {"n": "2"}, "user": "alice"},
        ))
        assert BatchActionRequest.from_body(batch.to_body()) == batch

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            BatchActionRequest.from_body({"actions": []})

    def test_rejects_missing_action_slug(self):
        with pytest.raises(ValueError):
            BatchActionRequest.from_body(
                {"actions": [{"actionFields": {}, "user": "alice"}]}
            )


def build_replay_world(
    replay=ReplayPolicy(),
    retry_policy=RetryPolicy(),
    breaker_policy=BreakerPolicy(),
    seed=11,
    **config_overrides,
):
    """The resilience suite's world plus a replay policy."""
    world = build_engine_world(
        config=default_engine_config(
            poll_timeout=5.0, action_timeout=5.0,
            retry_policy=retry_policy, breaker_policy=breaker_policy,
            replay_policy=replay, **config_overrides,
        ),
        net_seed=seed,
        engine_seed=seed + 1,
        with_trace=False,
    )
    applet = install_ping_applet(world.engine, {"n": "{{n}}"}, name="ping->record")
    world.sim.run_until(2.0)   # registration poll, so the identity exists
    return world, applet


def fill_dead_letters(world, count, start_at=3.0, spacing=11.0):
    """Drive ``count`` events into a permanently failing action executor
    until each has exhausted its retries into the dead-letter sink."""
    def exploding(fields):
        raise HttpError(500, "busted")

    healthy = world.service._actions["record"].executor
    world.service._actions["record"].executor = exploding
    for n in range(count):
        world.sim.schedule(
            start_at + n * spacing - world.sim.now,
            world.service.ingest_event, "ping", {"n": n},
        )
    world.sim.run_until(start_at + count * spacing + 60.0)
    world.service._actions["record"].executor = healthy
    assert len(world.engine.dead_letters) == count
    return healthy


def assert_conserved(engine):
    stats = engine.stats()
    assert stats["actions_dispatched"] == (
        stats["actions_delivered"]
        + stats["actions_in_retry"]
        + stats["dead_letters"]
        + stats["actions_in_replay"]
    )


class TestExplicitReplay:
    def test_replay_disabled_raises(self):
        world = build_engine_world(config=default_engine_config())
        assert world.engine.replay is None
        with pytest.raises(RuntimeError):
            world.engine.replay_dead_letters()

    def test_drain_delivers_and_batches_into_one_request(self):
        # The breaker never opens (threshold > failures per event burst
        # spacing is irrelevant: each letter exhausts 4 attempts, so 3
        # letters = 12 failures; raise the threshold out of reach).
        world, _ = build_replay_world(
            breaker_policy=BreakerPolicy(failure_threshold=100))
        fill_dead_letters(world, 3)
        assert world.engine.actions_delivered == 0
        world.engine.replay_dead_letters()
        world.sim.run_until(world.sim.now + 30.0)
        assert world.engine.dead_letters == []
        assert [f["n"] for f in world.executed] == ["0", "1", "2"]
        stats = world.engine.stats()
        assert stats["replay_drains"] == 1
        assert stats["dead_letters_replayed"] == 3
        assert stats["replay_requests_sent"] == 1        # one batch
        assert stats["replay_actions_delivered"] == 3
        assert stats["actions_in_replay"] == 0
        assert_conserved(world.engine)

    def test_unbatched_sends_one_request_per_letter(self):
        world, _ = build_replay_world(
            replay=ReplayPolicy(batching=False),
            breaker_policy=BreakerPolicy(failure_threshold=100))
        fill_dead_letters(world, 3)
        world.engine.replay_dead_letters()
        world.sim.run_until(world.sim.now + 30.0)
        stats = world.engine.stats()
        assert stats["replay_requests_sent"] == 3
        assert stats["replay_actions_delivered"] == 3
        assert_conserved(world.engine)

    def test_batch_limit_chunks_the_drain(self):
        world, _ = build_replay_world(
            replay=ReplayPolicy(batch_limit=2),
            breaker_policy=BreakerPolicy(failure_threshold=100))
        fill_dead_letters(world, 5)
        world.engine.replay_dead_letters("svc")
        world.sim.run_until(world.sim.now + 30.0)
        stats = world.engine.stats()
        assert stats["replay_requests_sent"] == 3        # 2 + 2 + 1
        assert stats["replay_actions_delivered"] == 5
        assert world.engine.metrics is None or True      # accounting below
        assert_conserved(world.engine)

    def test_replayed_records_keep_original_created_at(self):
        world, _ = build_replay_world(
            breaker_policy=BreakerPolicy(failure_threshold=100))
        fill_dead_letters(world, 1)
        created = world.engine.dead_letters[0].created_at
        world.engine.replay_dead_letters()
        world.sim.run_until(world.sim.now + 30.0)
        (at, record), = world.engine.replay.deliveries
        assert record.created_at == created              # true T2A, not reset
        assert at > created

    def test_uninstalled_applet_letters_stay_sealed(self):
        world, applet_a = build_replay_world(
            breaker_policy=BreakerPolicy(failure_threshold=100))
        fill_dead_letters(world, 2)
        world.engine.uninstall_applet(applet_a.applet_id)
        world.engine.replay_dead_letters()
        world.sim.run_until(world.sim.now + 30.0)
        # Replaying for a removed applet would resurrect the bug
        # uninstall_applet closes; both letters stay in the sink.
        assert len(world.engine.dead_letters) == 2
        assert world.engine.stats()["dead_letters_replayed"] == 0
        assert world.executed == []

    def test_refailed_entries_go_back_through_retry_pipeline(self):
        world, _ = build_replay_world(
            breaker_policy=BreakerPolicy(failure_threshold=100))
        healthy = fill_dead_letters(world, 2)

        # First replay attempt fails per entry; retries then succeed.
        failures = [2]

        def flaky(fields):
            if failures[0] > 0:
                failures[0] -= 1
                raise HttpError(500, "still warming up")
            healthy(fields)

        world.service._actions["record"].executor = flaky
        world.engine.replay_dead_letters()
        world.sim.run_until(world.sim.now + 60.0)
        stats = world.engine.stats()
        assert stats["replay_actions_failed"] == 2
        assert stats["actions_delivered"] == 2           # via ordinary retries
        assert stats["actions_in_retry"] == 0
        assert_conserved(world.engine)


def heal_breaker(world):
    """Walk the service's breaker through OPEN -> HALF_OPEN -> CLOSED,
    firing the engine's heal hook exactly as a probe success would."""
    sim, engine = world.sim, world.engine
    breaker = engine.breaker_for("svc")
    for _ in range(engine.config.breaker_policy.failure_threshold):
        breaker.record_failure(sim.now)
    assert breaker.state is BreakerState.OPEN
    sim.run_until(sim.now + engine.config.breaker_policy.recovery_timeout)
    assert breaker.allow(sim.now)                        # the probe slot
    breaker.record_success(sim.now)
    assert breaker.state is BreakerState.CLOSED
    return breaker


class TestHealTriggeredReplay:
    def test_breaker_close_drains_dead_letters(self):
        world, _ = build_replay_world(seed=11)
        sim, engine = world.sim, world.engine
        fill_dead_letters(world, 3)
        dead = len(engine.dead_letters)
        assert dead == 3
        heal_breaker(world)
        sim.run_until(sim.now + 60.0)
        # The heal hook drained the sink without any explicit trigger.
        assert engine.dead_letters == []
        stats = engine.stats()
        assert stats["dead_letters_replayed"] == dead
        assert stats["replay_drains"] == 1
        assert stats["replay_actions_delivered"] == dead
        assert stats["actions_in_replay"] == 0
        assert_conserved(engine)

    def test_heal_replay_disabled_by_policy_flag(self):
        world, _ = build_replay_world(
            replay=ReplayPolicy(replay_on_heal=False), seed=11)
        sim, engine = world.sim, world.engine
        fill_dead_letters(world, 2)
        heal_breaker(world)
        sim.run_until(sim.now + 60.0)
        assert len(engine.dead_letters) == 2             # sealed until asked
        engine.replay_dead_letters()
        sim.run_until(sim.now + 30.0)
        assert engine.dead_letters == []
        assert_conserved(engine)


class TestRealtimeHintFallback:
    def build(self, seed=11):
        world = build_engine_world(
            config=default_engine_config(
                poll_policy=FixedPollingPolicy(300.0),
                poll_timeout=5.0, action_timeout=5.0,
                realtime_allowlist=frozenset({"svc"}),
                replay_policy=ReplayPolicy(),
            ),
            net_seed=seed, engine_seed=seed + 1,
            with_trace=False, realtime_service=True,
        )
        install_ping_applet(world.engine, {"n": "{{n}}"}, name="ping->record")
        world.sim.run_until(2.0)
        return world

    def open_breaker(self, world):
        breaker = world.engine.breaker_for("svc")
        for _ in range(world.engine.config.breaker_policy.failure_threshold):
            breaker.record_failure(world.sim.now)
        assert breaker.state is BreakerState.OPEN
        return breaker

    def test_hint_suppressed_while_breaker_open(self):
        world = self.build()
        self.open_breaker(world)
        world.service.ingest_event("ping", {"n": 1})
        world.sim.run_until(world.sim.now + 5.0)
        engine = world.engine
        assert engine.realtime_hints_suppressed == 1
        assert engine.realtime_hints_honoured == 0
        assert world.executed == []                      # no fast poll fired

    def test_suppressed_hint_resumes_on_heal(self):
        world = self.build()
        engine, sim, service = world.engine, world.sim, world.service
        breaker = self.open_breaker(world)
        service.ingest_event("ping", {"n": 1})
        sim.run_until(sim.now + 5.0)
        assert engine.realtime_hints_suppressed == 1
        # Half-open probe succeeds: the breaker closes and the parked
        # hint fires its fast poll, long before the 300 s cadence.
        healed_at = sim.now + engine.config.breaker_policy.recovery_timeout
        sim.run_until(healed_at)
        breaker.allow(sim.now)                           # the probe slot
        breaker.record_success(sim.now)
        assert breaker.state is BreakerState.CLOSED
        sim.run_until(sim.now + 10.0)
        assert engine.realtime_hints_resumed == 1
        assert [f["n"] for f in world.executed] == ["1"]

    def test_hint_honoured_normally_when_breaker_closed(self):
        world = self.build()
        world.service.ingest_event("ping", {"n": 1})
        world.sim.run_until(world.sim.now + 10.0)
        engine = world.engine
        assert engine.realtime_hints_honoured == 1
        assert engine.realtime_hints_suppressed == 0
        assert [f["n"] for f in world.executed] == ["1"]


class TestChaosReplayReport:
    def test_batching_reduces_catchup_requests(self):
        batched = run_chaos_scenario(
            "outage", seed=7, replay=ReplayPolicy(batch_limit=50, batching=True))
        single = run_chaos_scenario(
            "outage", seed=7, replay=ReplayPolicy(batch_limit=50, batching=False))
        assert batched.replay is not None and single.replay is not None
        assert batched.replay.replayed == single.replay.replayed > 0
        assert batched.replay.requests_sent < single.replay.requests_sent
        # At the paper's k=50 the whole burst fits in one request.
        assert batched.replay.requests_sent == 1
        assert batched.actions_silently_lost == 0
        assert single.actions_silently_lost == 0
        assert batched.actions_dead_lettered == 0        # sink fully drained

    def test_replay_report_burst_metrics(self):
        result = run_chaos_scenario("outage", seed=7, replay=ReplayPolicy())
        report = result.replay
        assert report.duration >= 0.0
        assert report.requests_per_second > 0
        assert report.burst_ratio > 1.0                  # bursty by nature
        assert len(report.t2a) == report.delivered
        assert report.t2a_max() >= report.t2a_mean() > 0.0
        assert any("replay" in line for line in result.summary().splitlines())

    def test_no_replay_means_no_report(self):
        result = run_chaos_scenario("outage", seed=7)
        assert result.replay is None
        assert result.actions_in_replay == 0


SHARD_STRATEGY = st.sampled_from(
    ["service_hash", "round_robin", "popularity_balanced"])


@settings(max_examples=6, deadline=None)
@given(strategy=SHARD_STRATEGY, seed=st.integers(min_value=1, max_value=40))
def test_conservation_through_outage_heal_replay(strategy, seed):
    """The extended invariant survives a full outage→heal→replay cycle,
    per shard and in the merged fleet snapshot, under every strategy."""
    result = run_sharded_chaos_scenario(
        "outage", seed=seed, num_shards=3, shard_strategy=strategy,
        replay=ReplayPolicy(),
    )
    # Per shard: dispatched == delivered + in_retry + dead + in_replay.
    assert result.shard_silently_lost == [0] * result.num_shards
    assert result.actions_silently_lost == 0
    # Everything settled by the end of the drain window.
    assert result.fleet_stats["actions_in_retry"] == 0
    assert result.fleet_stats["actions_in_replay"] == 0
    # The victim's sink was drained by the heal-triggered replay.
    assert result.fleet_stats["dead_letters"] == 0
    assert result.fleet_stats["dead_letters_replayed"] > 0
    # The merged fleet snapshot states the same conservation in counter
    # space: the dead_letters counter only ever increments, so the
    # drained letters reappear as replay.dead_letters_replayed.
    merged = result.merged_engine_snapshot["metrics"]

    def total(name):
        return sum(e["value"] for e in merged if e["name"] == name)

    assert total("engine.actions_dispatched") == (
        total("engine.actions_delivered")
        + total("engine.dead_letters")
        - total("engine.replay.dead_letters_replayed")
    )
    assert (total("engine.replay.actions_delivered")
            == result.fleet_stats["replay_actions_delivered"])
