"""Tests for the frontend pages, parsers, crawler, and snapshot store."""

import pytest

from repro.crawler import (
    IftttCrawler,
    ParseError,
    SnapshotStore,
    parse_applet_page,
    parse_index_page,
    parse_service_page,
)
from repro.frontend import render_applet_page, render_index_page


class TestFrontend:
    def test_index_page_lists_services(self, small_corpus, small_site):
        page = small_site.fetch("/services")
        assert page is not None
        assert page.count("service-link") == 408

    def test_service_page_renders(self, small_site):
        page = small_site.fetch("/services/philips_hue")
        assert "Philips Hue" in page
        assert 'class="action"' in page

    def test_unknown_service_404(self, small_site):
        assert small_site.fetch("/services/ghost") is None

    def test_applet_page_renders(self, small_corpus, small_site):
        applet_id = next(iter(small_corpus.applets))
        page = small_site.fetch(f"/applets/{applet_id}")
        assert "applet-name" in page
        assert "add-count" in page

    def test_missing_applet_404(self, small_site):
        assert small_site.fetch("/applets/999999") is None
        assert small_site.fetch("/applets/not-a-number") is None

    def test_unknown_path_404(self, small_site):
        assert small_site.fetch("/nonsense") is None

    def test_week_filtering(self, small_corpus, small_site):
        late_services = [s for s in small_corpus.services.values() if s.created_week > 10]
        assert late_services, "need an in-window service for this test"
        slug = late_services[0].slug
        assert small_site.fetch(f"/services/{slug}", week=0) is None
        assert small_site.fetch(f"/services/{slug}", week=24) is not None

    def test_html_escaping(self, small_corpus):
        from repro.ecosystem.corpus import AppletRecord

        applet = AppletRecord(1, "a <b> & c", "d", "t", "s", "a", "s2", "user", True, 5)
        page = render_applet_page(applet, "T", "TS", "A", "AS", 5)
        assert "&lt;b&gt;" in page


class TestParsers:
    def test_index_round_trip(self, small_corpus):
        page = render_index_page(small_corpus.services_at())
        entries = parse_index_page(page)
        assert len(entries) == 408
        assert {"slug", "name"} <= set(entries[0])

    def test_index_rejects_garbage(self):
        with pytest.raises(ParseError):
            parse_index_page("<html><body>nope</body></html>")

    def test_service_round_trip(self, small_corpus, small_site):
        page = small_site.fetch("/services/amazon_alexa")
        parsed = parse_service_page(page)
        assert parsed["name"] == "Amazon Alexa"
        assert any(t["name"] == "Say a phrase" for t in parsed["triggers"])

    def test_service_rejects_garbage(self):
        with pytest.raises(ParseError):
            parse_service_page("<html></html>")

    def test_applet_round_trip(self, small_corpus, small_site):
        applet_id, applet = next(iter(small_corpus.applets.items()))
        page = small_site.fetch(f"/applets/{applet_id}")
        parsed = parse_applet_page(page)
        assert parsed["add_count"] == applet.add_count
        assert parsed["trigger_service_slug"] == applet.trigger_service_slug
        assert parsed["author"] == applet.author

    def test_applet_rejects_garbage(self):
        with pytest.raises(ParseError):
            parse_applet_page("<html></html>")


class TestCrawler:
    def test_snapshot_matches_ground_truth(self, small_corpus, small_snapshot):
        assert small_snapshot.summary() == small_corpus.summary()

    def test_applet_fields_preserved(self, small_corpus, small_snapshot):
        for applet_id in list(small_corpus.applets)[:200]:
            truth = small_corpus.applets[applet_id]
            crawled = small_snapshot.applets[applet_id]
            assert crawled.add_count == truth.add_count
            assert crawled.author_is_user == truth.author_is_user
            assert crawled.trigger_service_slug == truth.trigger_service_slug

    def test_weekly_snapshot_smaller(self, small_corpus, small_site):
        early = IftttCrawler(small_site).crawl(week=0)
        final = small_corpus.summary()
        assert early.summary()["applets"] < final["applets"]
        assert early.summary()["add_count"] < final["add_count"]

    def test_id_floor_validation(self, small_site):
        with pytest.raises(ValueError):
            IftttCrawler(small_site, id_floor=10, id_ceiling=10)

    def test_probing_stats(self, small_snapshot):
        assert small_snapshot.ids_probed > len(small_snapshot.applets)
        assert small_snapshot.pages_fetched > 408

    def test_snapshot_serialization_round_trip(self, small_snapshot, tmp_path):
        store = SnapshotStore()
        store.add(small_snapshot)
        path = tmp_path / "snapshots.json"
        store.save(path)
        loaded = SnapshotStore.load(path)
        assert loaded.last().summary() == small_snapshot.summary()


class TestSnapshotStore:
    def test_growth_requires_two(self, small_snapshot):
        store = SnapshotStore()
        store.add(small_snapshot)
        with pytest.raises(ValueError):
            store.growth()

    def test_growth_computation(self, snapshot_store):
        growth = snapshot_store.growth()
        assert growth["services"] > 0
        assert growth["add_count"] > 0.1

    def test_weeks_sorted(self, snapshot_store):
        assert snapshot_store.weeks() == sorted(snapshot_store.weeks())
        assert snapshot_store.first().week == 0
        assert snapshot_store.last().week == 24

    def test_weekly_summaries_monotone_applets(self, snapshot_store):
        counts = [s["applets"] for s in snapshot_store.weekly_summaries()]
        assert counts == sorted(counts)

    def test_snapshot_date(self, small_snapshot):
        assert small_snapshot.date.startswith("2017")  # week 24 = April 2017
