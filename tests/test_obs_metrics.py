"""Unit tests for the repro.obs metrics registry.

Counter/Gauge/Histogram semantics, label handling, snapshot/merge
commutativity, and the JSON-lines export round trip.
"""

import json

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
    snapshot_from_json_lines,
    snapshot_to_json_lines,
)
from repro.simcore.rng import Rng


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("polls")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("polls")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_same_name_same_labels_is_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("polls", service="hue").inc()
        registry.counter("polls", service="hue").inc()
        assert registry.value("polls", service="hue") == 2

    def test_labels_partition_the_series(self):
        registry = MetricsRegistry()
        registry.counter("polls", service="hue").inc()
        registry.counter("polls", service="wemo").inc(2)
        assert registry.value("polls", service="hue") == 1
        assert registry.value("polls", service="wemo") == 2
        assert registry.total("polls") == 3

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("x", a=1, b=2).inc()
        assert registry.counter("x", b=2, a=1).value == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.add(-3.5)
        assert gauge.value == 6.5


class TestHistogram:
    def test_counts_sum_min_max(self):
        histogram = MetricsRegistry().histogram("lat")
        for v in (0.2, 1.5, 90.0):
            histogram.observe(v)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(91.7)
        assert histogram.min == pytest.approx(0.2)
        assert histogram.max == pytest.approx(90.0)
        assert sum(histogram.bucket_counts) == 3

    def test_bucket_assignment_uses_upper_edges(self):
        histogram = MetricsRegistry().histogram("sizes", bounds=(1.0, 10.0))
        histogram.observe(1.0)   # <= 1  -> bucket 0
        histogram.observe(5.0)   # <= 10 -> bucket 1
        histogram.observe(99.0)  # overflow
        assert histogram.bucket_counts == [1, 1, 1]

    def test_quantiles_track_the_stream(self):
        histogram = MetricsRegistry().histogram("lat")
        for v in range(1, 1001):
            histogram.observe(float(v))
        assert histogram.quantile(0.5) == pytest.approx(500, rel=0.1)
        assert histogram.quantile(0.99) == pytest.approx(990, rel=0.05)

    def test_rejects_unordered_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", bounds=(5.0, 1.0))

    def test_count_buckets_cover_zero(self):
        histogram = MetricsRegistry().histogram("batch", bounds=COUNT_BUCKETS)
        histogram.observe(0)
        assert histogram.bucket_counts[0] == 1


class TestScopes:
    def test_scoped_prefix_and_labels(self):
        registry = MetricsRegistry()
        engine = registry.scoped("engine", service="hue")
        engine.counter("polls_sent").inc()
        assert registry.value("engine.polls_sent", service="hue") == 1

    def test_nested_scopes_compose(self):
        registry = MetricsRegistry()
        registry.scoped("a").scoped("b").counter("c").inc()
        assert registry.value("a.b.c") == 1

    def test_call_site_labels_override_scope_labels(self):
        registry = MetricsRegistry()
        scope = registry.scoped("s", kind="default")
        scope.counter("n", kind="special").inc()
        assert registry.value("s.n", kind="special") == 1


def _populated_registry(seed: int, n: int = 400) -> MetricsRegistry:
    rng = Rng(seed=seed)
    registry = MetricsRegistry()
    registry.counter("polls", service="hue").inc(seed * 3 + 1)
    registry.counter("polls", service="wemo").inc(seed + 2)
    registry.gauge("rate").set(seed * 1.5)
    histogram = registry.histogram("lat")
    for _ in range(n):
        histogram.observe(rng.lognormal_median(90.0, 0.4))
    return registry


def _approx_equal(left, right, rel=1e-9):
    """Structural equality with float tolerance (nested dicts/lists)."""
    if isinstance(left, dict) and isinstance(right, dict):
        return left.keys() == right.keys() and all(
            _approx_equal(left[k], right[k], rel) for k in left
        )
    if isinstance(left, list) and isinstance(right, list):
        return len(left) == len(right) and all(
            _approx_equal(a, b, rel) for a, b in zip(left, right)
        )
    if isinstance(left, float) or isinstance(right, float):
        return left == pytest.approx(right, rel=rel)
    return left == right


class TestSnapshotsAndMerge:
    def test_snapshot_is_json_serializable_and_ordered(self):
        snapshot = _populated_registry(1).snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        names = [entry["name"] for entry in snapshot["metrics"]]
        assert names == sorted(names)

    def test_merge_is_commutative(self):
        a = _populated_registry(1).snapshot()
        b = _populated_registry(2).snapshot()
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    def test_merge_is_associative(self):
        # Histogram sums are float additions, which are only associative
        # up to rounding — compare structurally with approx on floats.
        a = _populated_registry(1).snapshot()
        b = _populated_registry(2).snapshot()
        c = _populated_registry(3).snapshot()
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert _approx_equal(left, right)

    def test_merge_semantics_per_kind(self):
        a = _populated_registry(1).snapshot()
        b = _populated_registry(2).snapshot()
        merged = merge_snapshots(a, b)
        by_key = {
            (e["name"], tuple(sorted(e["labels"].items()))): e
            for e in merged["metrics"]
        }
        assert by_key[("polls", (("service", "hue"),))]["value"] == 4 + 7
        assert by_key[("rate", ())]["value"] == 3.0  # max of 1.5, 3.0
        histogram = by_key[("lat", ())]
        assert histogram["count"] == 800
        assert histogram["min"] <= min(
            e["min"] for s in (a, b) for e in s["metrics"] if e["name"] == "lat"
        )

    def test_merged_histogram_quantiles_from_buckets_are_sane(self):
        a = _populated_registry(1).snapshot()
        b = _populated_registry(2).snapshot()
        histogram = [
            e for e in merge_snapshots(a, b)["metrics"] if e["name"] == "lat"
        ][0]
        # The stream has median ~90 s; bucket interpolation is coarse but
        # must land inside the 50-250 s bucket span around it.
        assert 50 <= histogram["quantiles"]["0.5"] <= 250

    def test_merge_rejects_mismatched_bounds(self):
        registry = MetricsRegistry()
        registry.histogram("lat", bounds=(1.0, 2.0)).observe(1.0)
        other = MetricsRegistry()
        other.histogram("lat", bounds=(1.0, 3.0)).observe(1.0)
        with pytest.raises(ValueError):
            merge_snapshots(registry.snapshot(), other.snapshot())

    def test_merge_rejects_kind_conflicts(self):
        a = MetricsRegistry()
        a.counter("x").inc()
        b = MetricsRegistry()
        b.gauge("x").set(1)
        with pytest.raises(ValueError):
            merge_snapshots(a.snapshot(), b.snapshot())


class TestJsonExport:
    def test_round_trip_preserves_every_metric(self):
        snapshot = _populated_registry(5).snapshot()
        text = snapshot_to_json_lines(snapshot)
        assert snapshot_from_json_lines(text) == json.loads(json.dumps(snapshot))

    def test_one_line_per_metric(self):
        registry = _populated_registry(5)
        text = registry.to_json_lines()
        assert len(text.splitlines()) == len(registry)

    def test_round_trip_then_merge_matches_direct_merge(self):
        a = _populated_registry(1).snapshot()
        b = _populated_registry(2).snapshot()
        via_text = merge_snapshots(
            snapshot_from_json_lines(snapshot_to_json_lines(a)),
            snapshot_from_json_lines(snapshot_to_json_lines(b)),
        )
        assert via_text == merge_snapshots(a, b)
