"""Full-scale corpus validation (the paper's actual magnitudes).

Most tests run at reduced scale for speed; this module generates the
corpus at scale 1.0 — 320K applets, ~23M adds, 135K user channels — and
checks the absolute numbers the paper reports.  It is the slowest test in
the suite (~10 s) and the final word on calibration.
"""

import pytest

from repro.ecosystem import EcosystemGenerator, EcosystemParams
from repro.ecosystem.popularity import top_share


@pytest.fixture(scope="module")
def full_corpus():
    return EcosystemGenerator(EcosystemParams(scale=1.0, seed=2017)).generate()


class TestFullScaleHeadlines:
    def test_paper_counts(self, full_corpus):
        summary = full_corpus.summary()
        assert summary["services"] == 408
        assert summary["triggers"] == 1490
        assert summary["actions"] == 957
        assert summary["applets"] == 320_000
        assert summary["add_count"] == 23_000_000

    def test_applet_ids_stay_six_digit(self, full_corpus):
        low, high = full_corpus.applet_id_bounds()
        assert low == 100_000
        assert high <= 999_999

    def test_tail_statistics(self, full_corpus):
        adds = [a.add_count for a in full_corpus.applets_at()]
        assert top_share(adds, 0.01) == pytest.approx(0.841, abs=0.02)
        # the one-add-per-applet floor flattens the extreme tail slightly
        assert top_share(adds, 0.10) == pytest.approx(0.976, abs=0.03)

    def test_top_applet_magnitude(self, full_corpus):
        """Figure 3's Y axis tops out around 10^5 adds."""
        top = max(a.add_count for a in full_corpus.applets_at())
        assert 60_000 <= top <= 250_000

    def test_table3_absolute_magnitudes(self, full_corpus):
        """Alexa ~1.2M trigger adds, Hue ~1.2M action adds (Table 3)."""
        trigger_adds = {}
        action_adds = {}
        for applet in full_corpus.applets_at():
            trigger_adds[applet.trigger_service_slug] = (
                trigger_adds.get(applet.trigger_service_slug, 0) + applet.add_count
            )
            action_adds[applet.action_service_slug] = (
                action_adds.get(applet.action_service_slug, 0) + applet.add_count
            )
        assert trigger_adds["amazon_alexa"] == pytest.approx(1_200_000, rel=0.35)
        assert action_adds["philips_hue"] == pytest.approx(1_200_000, rel=0.35)
        # Fitbit's 0.2M trigger adds, an order below Alexa
        assert trigger_adds["fitbit"] == pytest.approx(200_000, rel=0.6)

    def test_user_channel_count(self, full_corpus):
        """§3.2: 135,544 user channels."""
        channels = {a.author for a in full_corpus.applets_at() if a.author_is_user}
        # at full scale most of the 135K sampled users publish >= 1 applet
        assert 60_000 <= len(channels) <= 135_544

    def test_iot_shares_full_scale(self, full_corpus):
        iot = {s.slug for s in full_corpus.services_at() if s.category_index <= 4}
        applets = full_corpus.applets_at()
        total = sum(a.add_count for a in applets)
        iot_adds = sum(
            a.add_count for a in applets
            if a.trigger_service_slug in iot or a.action_service_slug in iot
        )
        assert len(iot) / 408 == pytest.approx(0.517, abs=0.005)
        assert iot_adds / total == pytest.approx(0.16, abs=0.03)
