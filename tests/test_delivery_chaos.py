"""Chaos regressions for health-aware adaptive delivery.

The "no retry storm" guarantee: during a brownout, an adaptive engine
must back off the victim service hard (≥3× fewer requests inside the
fault window than a non-adaptive engine sends) *without* hurting anyone
else — zero overload dead letters on healthy services, healthy-shard
T2A p95 within 5% of the non-adaptive run — and after heal the victim's
poll-interval distribution must converge back to its baseline (§4),
across every shard strategy and both poll-dispatch modes.

These are the acceptance criteria `make degrade-check` enforces on the
CLI path; here they are pinned as regressions with the library API.
"""

import pytest

from repro.engine.config import EngineConfig
from repro.engine.delivery import DeliveryPolicy
from repro.engine.poller import FixedPollingPolicy
from repro.engine.scheduler import POLL_DISPATCH_MODES
from repro.engine.sharding import SHARD_STRATEGIES
from repro.reporting.adaptive_report import (
    MAX_QUARTILE_DRIFT,
    MIN_DROP_RATIO,
    adaptive_delivery_violations,
    drop_ratio,
    render_adaptive_comparison,
)
from repro.simcore.rng import quantiles
from repro.testbed.chaos import (
    SENSOR_SLUG,
    ChaosWorld,
    chaos_scenario,
    run_chaos_scenario,
    run_sharded_chaos_scenario,
)

SEED = 7
#: The sharded worlds retarget the brownout onto the victim pair's sensor.
SHARDED_VICTIM = f"{SENSOR_SLUG}0"


def _p95(values):
    assert values, "phase produced no T2A samples"
    return quantiles(values, (0.95,))[0]


@pytest.fixture(scope="module")
def plain_runs():
    adaptive = run_chaos_scenario("brownout", seed=SEED, delivery=DeliveryPolicy())
    baseline = run_chaos_scenario("brownout", seed=SEED)
    return adaptive, baseline


class TestNoRetryStormPlain:
    def test_victim_request_rate_drops_3x(self, plain_runs):
        adaptive, baseline = plain_runs
        assert baseline.fault_window_requests[SENSOR_SLUG] > 0
        assert drop_ratio(baseline, adaptive, SENSOR_SLUG) >= MIN_DROP_RATIO

    def test_no_overload_dead_letters_on_healthy_services(self, plain_runs):
        adaptive, _ = plain_runs
        for slug, count in adaptive.overload_dead_letters_by_service.items():
            if slug != SENSOR_SLUG:
                assert count == 0, f"healthy service {slug} dead-lettered overload"

    def test_conservation_holds_under_adaptation(self, plain_runs):
        adaptive, baseline = plain_runs
        assert adaptive.actions_silently_lost == 0
        assert baseline.actions_silently_lost == 0

    def test_stretch_fully_decayed_after_heal(self, plain_runs):
        adaptive, _ = plain_runs
        assert adaptive.post_heal_stretch, "adaptive run recorded no health"
        assert all(s == 1.0 for s in adaptive.post_heal_stretch.values())

    def test_interval_distribution_restored(self, plain_runs):
        adaptive, _ = plain_runs
        assert adaptive.post_heal_quartiles is not None
        assert adaptive.baseline_quartiles is not None
        assert adaptive.post_heal_quartile_drift <= MAX_QUARTILE_DRIFT

    def test_acceptance_checker_agrees(self, plain_runs):
        adaptive, baseline = plain_runs
        assert adaptive_delivery_violations(adaptive, baseline, {SENSOR_SLUG}) == []

    def test_baseline_run_carries_no_adaptive_readout(self, plain_runs):
        _, baseline = plain_runs
        assert baseline.post_heal_quartiles is None
        assert baseline.post_heal_stretch == {}

    def test_comparison_table_renders(self, plain_runs):
        adaptive, baseline = plain_runs
        table = render_adaptive_comparison(adaptive, baseline)
        assert SENSOR_SLUG in table
        assert "drop" in table


class TestPollDispatchModes:
    """Convergence holds in both poll-dispatch engines (satellite 3)."""

    @pytest.mark.parametrize("mode", POLL_DISPATCH_MODES)
    def test_convergence_per_dispatch_mode(self, mode):
        config = EngineConfig(
            poll_policy=FixedPollingPolicy(5.0),
            initial_poll_delay=0.5,
            poll_timeout=10.0,
            action_timeout=10.0,
            poll_dispatch=mode,
        )
        world = ChaosWorld(seed=SEED, engine_config=config, delivery=DeliveryPolicy())
        result = world.run(chaos_scenario("brownout"))
        assert result.actions_silently_lost == 0
        assert all(s == 1.0 for s in result.post_heal_stretch.values())
        assert result.post_heal_quartile_drift <= MAX_QUARTILE_DRIFT


@pytest.fixture(scope="module", params=sorted(SHARD_STRATEGIES))
def sharded_runs(request):
    strategy = request.param
    adaptive = run_sharded_chaos_scenario(
        "brownout", seed=SEED, shard_strategy=strategy, delivery=DeliveryPolicy()
    )
    baseline = run_sharded_chaos_scenario("brownout", seed=SEED, shard_strategy=strategy)
    return strategy, adaptive, baseline


class TestNoRetryStormSharded:
    """The guarantee holds per shard strategy, and adaptation on the
    victim shard never bleeds into healthy shards (satellites 3+4)."""

    def test_same_victim_shard(self, sharded_runs):
        _, adaptive, baseline = sharded_runs
        assert adaptive.victim_shard == baseline.victim_shard
        assert adaptive.assignments == baseline.assignments

    def test_victim_request_rate_drops_3x(self, sharded_runs):
        _, adaptive, baseline = sharded_runs
        assert baseline.fault_window_requests[SHARDED_VICTIM] > 0
        assert drop_ratio(baseline, adaptive, SHARDED_VICTIM) >= MIN_DROP_RATIO

    def test_healthy_shard_t2a_p95_within_5_percent(self, sharded_runs):
        _, adaptive, baseline = sharded_runs
        adaptive_p95 = _p95(adaptive.t2a_values(adaptive.healthy_shards))
        baseline_p95 = _p95(baseline.t2a_values(baseline.healthy_shards))
        assert adaptive_p95 == pytest.approx(baseline_p95, rel=0.05)

    def test_no_overload_dead_letters_on_healthy_services(self, sharded_runs):
        _, adaptive, _ = sharded_runs
        for slug, count in adaptive.overload_dead_letters_by_service.items():
            if slug != SHARDED_VICTIM:
                assert count == 0, f"healthy service {slug} dead-lettered overload"

    def test_conservation_per_shard_and_merged(self, sharded_runs):
        _, adaptive, _ = sharded_runs
        assert adaptive.shard_silently_lost == [0] * adaptive.num_shards
        assert adaptive.actions_silently_lost == 0

    def test_convergence_per_strategy(self, sharded_runs):
        _, adaptive, _ = sharded_runs
        assert adaptive.post_heal_stretch, "adaptive run recorded no health"
        assert all(s == 1.0 for s in adaptive.post_heal_stretch.values())
        assert adaptive.post_heal_quartile_drift <= MAX_QUARTILE_DRIFT

    def test_acceptance_checker_agrees(self, sharded_runs):
        _, adaptive, baseline = sharded_runs
        assert adaptive_delivery_violations(adaptive, baseline, {SHARDED_VICTIM}) == []


class TestAdaptiveDeterminism:
    def test_plain_adaptive_snapshots_identical(self):
        first = run_chaos_scenario("brownout", seed=SEED, delivery=DeliveryPolicy())
        second = run_chaos_scenario("brownout", seed=SEED, delivery=DeliveryPolicy())
        assert first.snapshot == second.snapshot

    def test_sharded_adaptive_snapshots_identical(self):
        first = run_sharded_chaos_scenario(
            "brownout", seed=SEED, delivery=DeliveryPolicy()
        )
        second = run_sharded_chaos_scenario(
            "brownout", seed=SEED, delivery=DeliveryPolicy()
        )
        assert first.snapshot == second.snapshot
        assert first.merged_engine_snapshot == second.merged_engine_snapshot

    def test_adaptive_off_matches_pre_delivery_baseline(self):
        """An engine configured without a delivery policy produces the
        same snapshot whether the delivery module is imported or not —
        the controller is absent, not merely idle."""
        first = run_chaos_scenario("brownout", seed=SEED)
        second = run_chaos_scenario("brownout", seed=SEED)
        assert first.snapshot == second.snapshot
        assert "engine.delivery.brownouts_observed" not in {
            key.split("{", 1)[0] for key in first.snapshot
        }
