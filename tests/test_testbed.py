"""Integration tests for the Figure 1 testbed and the test controller."""

import pytest

from repro.engine import EngineConfig, FixedPollingPolicy
from repro.testbed import Testbed, TestbedConfig, TestController
from repro.testbed.applets import APPLET_SUITE, E2, OFFICIAL, applet_spec
from repro.testbed.testbed import TEST_USER


@pytest.fixture
def fast_testbed():
    """Testbed with a 2 s fixed poller so experiments complete quickly."""
    config = TestbedConfig(
        seed=77,
        engine_config=EngineConfig(poll_policy=FixedPollingPolicy(2.0), initial_poll_delay=0.5),
    )
    return Testbed(config).build()


class TestBuild:
    def test_build_is_idempotent(self, fast_testbed):
        before = len(fast_testbed.network.nodes)
        fast_testbed.build()
        assert len(fast_testbed.network.nodes) == before

    def test_all_services_published(self, fast_testbed):
        slugs = set(fast_testbed.engine.published_slugs)
        assert {"philips_hue", "wemo", "amazon_alexa", "gmail", "google_sheets",
                "google_drive", "nest_thermostat", "smartthings", "weather",
                "our_service"} <= slugs

    def test_user_connected_to_every_service(self, fast_testbed):
        for service in fast_testbed.all_services():
            assert fast_testbed.engine.tokens.lookup(TEST_USER, service.slug)

    def test_topology_reaches_devices(self, fast_testbed):
        net = fast_testbed.network
        path = net.route(fast_testbed.engine.address, fast_testbed.hue_hub.address)
        assert len(path) >= 3  # engine - internet - gateway - hub

    def test_service_by_slug(self, fast_testbed):
        assert fast_testbed.service_by_slug("wemo") is fast_testbed.wemo_service
        with pytest.raises(KeyError):
            fast_testbed.service_by_slug("ghost")


class TestAppletSuite:
    def test_seven_applets_defined(self):
        assert sorted(APPLET_SUITE) == ["A1", "A2", "A3", "A4", "A5", "A6", "A7"]

    def test_groups_match_paper(self):
        assert {APPLET_SUITE[k].group for k in ("A1", "A2", "A3", "A4")} == {"A1-A4"}
        assert {APPLET_SUITE[k].group for k in ("A5", "A6", "A7")} == {"A5-A7"}

    def test_flows_match_table4(self):
        assert APPLET_SUITE["A1"].flow == "IoT -> WebApp"
        assert APPLET_SUITE["A2"].flow == "IoT -> IoT"
        assert APPLET_SUITE["A3"].flow == "WebApp -> IoT"
        assert APPLET_SUITE["A4"].flow == "WebApp -> WebApp"

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            applet_spec("A9")

    def test_missing_variant_rejected(self):
        with pytest.raises(KeyError):
            applet_spec("A5").refs(E2)


@pytest.mark.parametrize("key", ["A1", "A2", "A3", "A4", "A5", "A6", "A7"])
def test_each_applet_executes_end_to_end(fast_testbed, key):
    """Every Table 4 applet completes trigger -> action on official services."""
    controller = TestController(fast_testbed, timeout=120.0)
    controller.install(key, variant=OFFICIAL)
    fast_testbed.run_for(5.0)
    measurement = controller.run_once(applet_spec(key))
    assert measurement.completed, f"{key} never executed its action"
    assert measurement.latency is not None and measurement.latency > 0


class TestControllerMeasurement:
    def test_measure_t2a_returns_latencies(self, fast_testbed):
        controller = TestController(fast_testbed, timeout=120.0)
        latencies = controller.measure_t2a("A2", runs=3, spacing=10.0)
        assert len(latencies) == 3
        assert all(lat > 0 for lat in latencies)
        assert controller.completed_fraction == 1.0

    def test_e2_variant_uses_custom_service(self, fast_testbed):
        controller = TestController(fast_testbed, timeout=120.0)
        controller.install("A2", variant=E2)
        fast_testbed.run_for(5.0)
        measurement = controller.run_once(applet_spec("A2"))
        assert measurement.completed
        assert fast_testbed.custom_service.polls_served > 0
        assert fast_testbed.custom_service.actions_executed > 0

    def test_a2_action_goes_through_proxy_in_e2(self, fast_testbed):
        controller = TestController(fast_testbed, timeout=120.0)
        controller.install("A2", variant=E2)
        fast_testbed.run_for(5.0)
        controller.run_once(applet_spec("A2"))
        assert fast_testbed.proxy.commands_executed >= 1

    def test_a4_saves_attachment_name(self, fast_testbed):
        controller = TestController(fast_testbed, timeout=120.0)
        controller.install("A4", variant=OFFICIAL)
        fast_testbed.run_for(5.0)
        measurement = controller.run_once(applet_spec("A4"))
        assert measurement.completed
        names = [f.name for f in fast_testbed.gdrive.files("me")]
        assert "report.pdf" in names

    def test_a7_logs_song_title(self, fast_testbed):
        controller = TestController(fast_testbed, timeout=120.0)
        controller.install("A7", variant=OFFICIAL)
        fast_testbed.run_for(5.0)
        controller.run_once(applet_spec("A7"))
        rows = fast_testbed.sheets.rows("songs")
        assert rows and "experiment song" in rows[0][0]
