"""Paper-vs-measured calibration tests.

These assert the *shape* claims of §4 — who wins, by what rough factor,
where the quartiles sit — with tolerances appropriate for sampled runs.
They are the guardrails for EXPERIMENTS.md: if a refactor moves latency
behaviour off the paper's, these fail first.
"""

import pytest

from repro.simcore.rng import quantiles
from repro.testbed import Testbed, TestbedConfig, TestController
from repro.testbed.sequential import run_sequential_extreme
from repro.testbed.t2a import run_hosted_alexa_t2a


@pytest.fixture(scope="module")
def pooled_a1_a4():
    """Pooled latencies of A1-A4 on official services, 25 runs each."""
    pooled = []
    for index, key in enumerate(("A1", "A2", "A3", "A4")):
        testbed = Testbed(TestbedConfig(seed=1000 + index)).build()
        controller = TestController(testbed)
        pooled.extend(controller.measure_t2a(key, runs=25, spacing=150.0))
    return pooled


@pytest.fixture(scope="module")
def alexa_latencies():
    """Pooled latencies of A5-A7 (Alexa triggers), 10 runs each."""
    pooled = []
    for index, key in enumerate(("A5", "A6", "A7")):
        testbed = Testbed(TestbedConfig(seed=2000 + index)).build()
        controller = TestController(testbed)
        pooled.extend(controller.measure_t2a(key, runs=10, spacing=60.0))
    return pooled


class TestFigure4:
    def test_poll_bound_quartiles_in_band(self, pooled_a1_a4):
        """Paper: 25th/50th/75th = 58/84/122 s for A1-A4."""
        q25, q50, q75 = quantiles(pooled_a1_a4, (0.25, 0.50, 0.75))
        assert 25 <= q25 <= 90
        assert 50 <= q50 <= 120
        assert 85 <= q75 <= 170

    def test_latency_is_highly_variable(self, pooled_a1_a4):
        q25, _, q75 = quantiles(pooled_a1_a4, (0.25, 0.50, 0.75))
        assert q75 / q25 > 1.5

    def test_extreme_tail_reaches_minutes(self, pooled_a1_a4):
        """Paper: the T2A latency can reach 15 minutes."""
        assert max(pooled_a1_a4) > 250

    def test_all_runs_complete(self, pooled_a1_a4):
        assert len(pooled_a1_a4) == 100

    def test_alexa_applets_are_fast(self, alexa_latencies):
        """A5-A7's realtime hints are honoured: latency in seconds."""
        _, median, _ = quantiles(alexa_latencies, (0.25, 0.5, 0.75))
        assert median < 5.0

    def test_alexa_vs_pollbound_gap(self, pooled_a1_a4, alexa_latencies):
        poll_median = quantiles(pooled_a1_a4, (0.5,))[0]
        alexa_median = quantiles(alexa_latencies, (0.5,))[0]
        assert poll_median / alexa_median > 10


class TestHostedAlexa:
    def test_hosting_alexa_ourselves_is_slow(self):
        """§4: "When we use our own service to host Alexa, its latency
        becomes large" — our service's hints are not allowlisted."""
        latencies = run_hosted_alexa_t2a(runs=6, seed=31)
        assert len(latencies) == 6
        assert quantiles(latencies, (0.5,))[0] > 30.0


class TestFigure6Extreme:
    def test_loaded_engine_inflates_inter_cluster_gap(self):
        """Paper: the polling delay between clusters inflated to 14 min."""
        result = run_sequential_extreme(seed=41)
        assert len(result.clusters) >= 2
        assert result.max_inter_cluster_gap > 250.0
