"""Chaos regressions for push-first delivery (ISSUE 8, satellite 3).

``brownout`` and ``outage`` under ``--delivery push`` must uphold the
same bars the adaptive-delivery chaos suite pins for polling:

* **zero retry storms** — a trigger-side brownout produces *zero* poll
  retries under push (the engine barely polls a push-contract service),
  and no healthy service ever dead-letters with reason ``overload``;
* **fault isolation** — on a sharded fleet the healthy shards' T2A p95
  stays within 5% between the adaptive-push and plain-push runs;
* **restoration** — after heal the victim's (would-be) poll-interval
  quartiles sit within ``MAX_QUARTILE_DRIFT`` of the base policy's,
  probing through the ``PushDeliveryPolicy`` wrapper;
* **determinism** — same ``(scenario, seed, mode)`` serializes
  byte-identical snapshots, plain and sharded (``make push-check``).

A push-specific bonus is pinned too: a *sensor* brownout leaves push
T2A flat — payloads ride notifications, so degrading the sensor's
request-serving path cannot stall delivery the way it stalls polling.
"""

from statistics import mean

import pytest

from repro.engine.delivery import DeliveryPolicy
from repro.engine.sharding import SHARD_STRATEGIES
from repro.reporting.adaptive_report import MAX_QUARTILE_DRIFT
from repro.simcore.rng import quantiles
from repro.testbed.chaos import (
    SENSOR_SLUG,
    run_chaos_scenario,
    run_sharded_chaos_scenario,
)

SEED = 7


def _p95(values):
    assert values, "phase produced no T2A samples"
    return quantiles(values, (0.95,))[0]


@pytest.fixture(scope="module")
def push_brownout():
    return run_chaos_scenario("brownout", seed=SEED, delivery_mode="push")


@pytest.fixture(scope="module")
def push_outage():
    return run_chaos_scenario("outage", seed=SEED, delivery_mode="push")


class TestPushBrownout:
    def test_conservation(self, push_brownout):
        assert push_brownout.actions_silently_lost == 0
        assert push_brownout.actions_dead_lettered == 0

    def test_zero_poll_retry_storm(self, push_brownout):
        # Polling mode fights the browning sensor with poll retries;
        # push mode barely polls it, so the storm never starts.
        assert push_brownout.engine_stats["poll_retries"] == 0
        assert push_brownout.engine_stats["action_retries"] == 0

    def test_t2a_flat_through_the_fault(self, push_brownout):
        # Payloads ride notifications: the sensor's degraded *serving*
        # path (polls) is off the delivery path entirely.
        during = push_brownout.t2a_by_phase["during"]
        assert during, "fault window delivered nothing"
        assert mean(during) < 1.0
        assert push_brownout.t2a_max("during") < 2.0

    def test_every_injection_observed(self, push_brownout):
        assert push_brownout.events_observed == push_brownout.events_injected


class TestPushOutage:
    """A sink outage exercises the action path under push: retries,
    breaker shedding, and dead letters behave exactly as under polling —
    push changes the trigger side only."""

    def test_conservation_with_dead_letters(self, push_outage):
        assert push_outage.actions_silently_lost == 0
        assert push_outage.actions_dead_lettered > 0
        assert push_outage.engine_stats["action_retries"] > 0

    def test_breaker_cycled(self, push_outage):
        states = [(old, new) for _, _, old, new in push_outage.breaker_transitions]
        assert ("closed", "open") in states
        assert ("half_open", "closed") in states

    def test_t2a_recovers_after_heal(self, push_outage):
        after = push_outage.t2a_by_phase["after"]
        assert after
        assert mean(after) < 5.0


@pytest.fixture(scope="module", params=sorted(SHARD_STRATEGIES))
def sharded_push_runs(request):
    strategy = request.param
    adaptive = run_sharded_chaos_scenario(
        "brownout", seed=SEED, shard_strategy=strategy,
        delivery=DeliveryPolicy(), delivery_mode="push",
    )
    baseline = run_sharded_chaos_scenario(
        "brownout", seed=SEED, shard_strategy=strategy, delivery_mode="push",
    )
    return strategy, adaptive, baseline


class TestShardedPushBrownout:
    def test_same_victim_shard(self, sharded_push_runs):
        _, adaptive, baseline = sharded_push_runs
        assert adaptive.victim_shard == baseline.victim_shard

    def test_healthy_shard_t2a_p95_within_5_percent(self, sharded_push_runs):
        _, adaptive, baseline = sharded_push_runs
        adaptive_p95 = _p95(adaptive.t2a_values(adaptive.healthy_shards))
        baseline_p95 = _p95(baseline.t2a_values(baseline.healthy_shards))
        assert adaptive_p95 == pytest.approx(baseline_p95, rel=0.05)

    def test_no_overload_dead_letters_on_healthy_services(self, sharded_push_runs):
        _, adaptive, _ = sharded_push_runs
        victim = f"{SENSOR_SLUG}0"
        for slug, count in adaptive.overload_dead_letters_by_service.items():
            if slug != victim:
                assert count == 0, f"healthy service {slug} dead-lettered overload"

    def test_conservation_per_shard_and_merged(self, sharded_push_runs):
        _, adaptive, baseline = sharded_push_runs
        for run in (adaptive, baseline):
            assert run.shard_silently_lost == [0] * run.num_shards
            assert run.actions_silently_lost == 0

    def test_post_heal_quartiles_restored(self, sharded_push_runs):
        # The probe unwraps PushDeliveryPolicy to the adaptive wrapper
        # beneath: what the victim WOULD poll at on full fallback must
        # match the base distribution once the stretch has decayed.
        _, adaptive, _ = sharded_push_runs
        assert adaptive.post_heal_quartiles is not None
        assert adaptive.baseline_quartiles is not None
        assert adaptive.post_heal_quartile_drift <= MAX_QUARTILE_DRIFT
        assert all(s == 1.0 for s in adaptive.post_heal_stretch.values())

    def test_push_counters_present_fleet_wide(self, sharded_push_runs):
        _, adaptive, _ = sharded_push_runs
        assert adaptive.fleet_stats["push_notifications_received"] > 0
        assert adaptive.fleet_stats["push_events_ingested"] > 0


class TestPushDeterminism:
    def test_plain_push_snapshots_identical(self):
        first = run_chaos_scenario("brownout", seed=SEED, delivery_mode="push")
        second = run_chaos_scenario("brownout", seed=SEED, delivery_mode="push")
        assert first.snapshot == second.snapshot

    def test_sharded_push_snapshots_identical(self):
        first = run_sharded_chaos_scenario("outage", seed=SEED, delivery_mode="push")
        second = run_sharded_chaos_scenario("outage", seed=SEED, delivery_mode="push")
        assert first.snapshot == second.snapshot
        assert first.merged_engine_snapshot == second.merged_engine_snapshot

    def test_push_off_leaves_no_push_metrics(self):
        result = run_chaos_scenario("brownout", seed=SEED)
        families = {key.split("{", 1)[0] for key in result.snapshot}
        assert not any(".push." in family for family in families)
        assert result.engine_stats["push_notifications_received"] == 0
