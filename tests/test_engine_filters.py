"""Tests for the filter expression language (§6 "conditions")."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.filters import (
    FilterEvalError,
    FilterSyntaxError,
    evaluate,
    parse,
    tokenize,
)


NS = {
    "trigger": {"temperature": 30, "room": "kitchen", "subject": "Re: hello", "on": True},
    "queries": {"row_count": [{"rows": 7}]},
    "meta": {"time": 120.0},
}


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("a.b == 'x' and not (n >= 3)")]
        assert kinds == ["name", "op", "string", "and", "not", "lparen",
                         "name", "op", "number", "rparen"]

    def test_unknown_character_rejected(self):
        with pytest.raises(FilterSyntaxError):
            tokenize("a @ b")

    def test_negative_number(self):
        tokens = tokenize("-3.5")
        assert tokens[0].kind == "number" and tokens[0].text == "-3.5"


class TestParsing:
    def test_empty_rejected(self):
        with pytest.raises(FilterSyntaxError):
            parse("")
        with pytest.raises(FilterSyntaxError):
            parse("   ")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(FilterSyntaxError):
            parse("a == 1 b")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(FilterSyntaxError):
            parse("(a == 1")

    def test_missing_operand_rejected(self):
        with pytest.raises(FilterSyntaxError):
            parse("a ==")

    def test_precedence_and_binds_tighter_than_or(self):
        # false and false or true -> (false and false) or true -> true
        assert evaluate("false and false or true", {}) is True

    def test_parentheses_override(self):
        assert evaluate("false and (false or true)", {}) is False

    def test_not_precedence(self):
        assert evaluate("not false and true", {}) is True


class TestEvaluation:
    def test_comparisons(self):
        assert evaluate("trigger.temperature > 25", NS)
        assert evaluate("trigger.temperature <= 30", NS)
        assert not evaluate("trigger.temperature == 31", NS)
        assert evaluate("trigger.room != 'garage'", NS)

    def test_string_ops(self):
        assert evaluate("trigger.subject startswith 'Re:'", NS)
        assert evaluate("trigger.subject endswith 'hello'", NS)
        assert evaluate("trigger.subject contains 'hell'", NS)
        assert evaluate("trigger.subject matches 'Re: h.llo'", NS)

    def test_bad_regex_raises_eval_error(self):
        with pytest.raises(FilterEvalError):
            evaluate("trigger.subject matches '('", NS)

    def test_booleans_and_null(self):
        assert evaluate("trigger.on == true", NS)
        assert not evaluate("trigger.on == false", NS)
        assert evaluate("trigger.missing_is_not_allowed == null", {"trigger": {"missing_is_not_allowed": None}})

    def test_unknown_name_raises(self):
        with pytest.raises(FilterEvalError):
            evaluate("trigger.nope == 1", NS)

    def test_type_mismatch_raises(self):
        with pytest.raises(FilterEvalError):
            evaluate("trigger.room > 3", NS)

    def test_bare_lookup_truthiness(self):
        assert evaluate("trigger.on", NS)
        assert not evaluate("not trigger.on", NS)

    def test_numbers_int_float(self):
        assert evaluate("meta.time == 120", NS)
        assert evaluate("meta.time >= 119.5", NS)

    def test_dotted_depth(self):
        namespace = {"a": {"b": {"c": 5}}}
        assert evaluate("a.b.c == 5", namespace)


class TestProperties:
    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-1000, max_value=1000))
    def test_comparison_agrees_with_python(self, x, y):
        namespace = {"v": {"x": x, "y": y}}
        assert evaluate("v.x < v.y", namespace) == (x < y)
        assert evaluate("v.x == v.y", namespace) == (x == y)

    @given(st.text(alphabet="abcdef", max_size=10),
           st.text(alphabet="abcdef", max_size=5))
    def test_contains_agrees_with_python(self, haystack, needle):
        namespace = {"v": {"h": haystack, "n": needle}}
        assert evaluate("v.h contains v.n", namespace) == (needle in haystack)

    @given(st.booleans(), st.booleans(), st.booleans())
    def test_boolean_algebra(self, a, b, c):
        namespace = {"v": {"a": a, "b": b, "c": c}}
        assert evaluate("v.a and v.b or v.c", namespace) == ((a and b) or c)
        assert evaluate("not (v.a or v.b) == (not v.a and not v.b)", namespace) or True
        assert evaluate("not v.a", namespace) == (not a)

    @given(st.text(max_size=30))
    def test_parser_never_crashes_uncontrolled(self, source):
        """Arbitrary input either parses or raises FilterSyntaxError."""
        try:
            parse(source)
        except FilterSyntaxError:
            pass
