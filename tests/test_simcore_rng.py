"""Tests for the seeded RNG and its distributions (incl. property tests)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import Rng
from repro.simcore.rng import quantiles


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = Rng(7), Rng(7)
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_different_seeds_differ(self):
        a, b = Rng(7), Rng(8)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_is_deterministic(self):
        assert Rng(7).fork("net").seed == Rng(7).fork("net").seed

    def test_fork_name_sensitivity(self):
        root = Rng(7)
        assert root.fork("a").seed != root.fork("b").seed

    def test_fork_independent_of_consumption(self):
        a = Rng(7)
        a.random()
        b = Rng(7)
        assert a.fork("x").seed == b.fork("x").seed

    def test_nested_fork_paths_distinct(self):
        root = Rng(7)
        assert root.fork("a").fork("b").seed != root.fork("b").fork("a").seed


class TestDistributions:
    def test_uniform_bounds(self, rng):
        for _ in range(200):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value < 3.0

    def test_randint_inclusive(self, rng):
        values = {rng.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_exponential_mean(self, rng):
        n = 5000
        mean = sum(rng.exponential(10.0) for _ in range(n)) / n
        assert mean == pytest.approx(10.0, rel=0.1)

    def test_exponential_rejects_nonpositive(self, rng):
        with pytest.raises(ValueError):
            rng.exponential(0.0)

    def test_lognormal_median(self, rng):
        samples = sorted(rng.lognormal_median(100.0, 0.5) for _ in range(4001))
        assert samples[2000] == pytest.approx(100.0, rel=0.12)

    def test_lognormal_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            rng.lognormal_median(0.0, 0.5)

    def test_bernoulli_frequency(self, rng):
        hits = sum(rng.bernoulli(0.25) for _ in range(8000))
        assert hits / 8000 == pytest.approx(0.25, abs=0.03)

    def test_poisson_mean_small_lambda(self, rng):
        n = 4000
        mean = sum(rng.poisson(3.0) for _ in range(n)) / n
        assert mean == pytest.approx(3.0, rel=0.1)

    def test_poisson_large_lambda_uses_normal(self, rng):
        n = 2000
        mean = sum(rng.poisson(200.0) for _ in range(n)) / n
        assert mean == pytest.approx(200.0, rel=0.05)

    def test_poisson_zero(self, rng):
        assert rng.poisson(0) == 0

    def test_poisson_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            rng.poisson(-1.0)

    def test_bounded_pareto_range(self, rng):
        for _ in range(500):
            value = rng.bounded_pareto(1.2, 1.0, 100.0)
            assert 1.0 <= value <= 100.0

    def test_bounded_pareto_rejects_bad_bounds(self, rng):
        with pytest.raises(ValueError):
            rng.bounded_pareto(1.2, 10.0, 1.0)

    def test_weighted_index_respects_weights(self, rng):
        counts = [0, 0]
        for _ in range(4000):
            counts[rng.weighted_index([1.0, 3.0])] += 1
        assert counts[1] / 4000 == pytest.approx(0.75, abs=0.04)

    def test_weighted_index_rejects_zero_weights(self, rng):
        with pytest.raises(ValueError):
            rng.weighted_index([0.0, 0.0])

    def test_zipf_rank_weights_shape(self, rng):
        weights = rng.zipf_rank_weights(5, 1.0)
        assert weights == [1.0, 0.5, pytest.approx(1 / 3), 0.25, 0.2]

    def test_pareto_int_minimum(self, rng):
        assert all(rng.pareto_int(1.5, minimum=10) >= 10 for _ in range(100))


class TestQuantiles:
    def test_simple_median(self):
        assert quantiles([1, 2, 3, 4, 5], (0.5,)) == [3]

    def test_interpolation(self):
        assert quantiles([0, 10], (0.25,)) == [2.5]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantiles([], (0.5,))

    def test_out_of_range_point_rejected(self):
        with pytest.raises(ValueError):
            quantiles([1, 2], (1.5,))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_quantiles_bounded_by_extremes(self, values):
        q0, q50, q100 = quantiles(values, (0.0, 0.5, 1.0))
        assert q0 == min(values)
        assert q100 == max(values)
        assert min(values) <= q50 <= max(values)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=100),
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=1),
    )
    def test_quantiles_monotone_in_q(self, values, qa, qb):
        lo, hi = sorted((qa, qb))
        a, b = quantiles(values, (lo, hi))
        # allow one ulp of interpolation rounding on equal neighbours
        assert a <= b + 1e-9 * max(1.0, abs(b))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_fork_seed_in_range(seed, name):
    child = Rng(seed).fork(name)
    assert 0 <= child.seed < 2**63
