"""Tests for the ecosystem-scale permission study."""

import pytest

from repro.analysis.permissions_study import (
    run_permission_study,
    scope_universe,
)
from repro.ecosystem.corpus import ServiceRecord, TriggerRecord, ActionRecord


class TestScopeUniverse:
    def _service(self, category, n_triggers, n_actions):
        service = ServiceRecord("s", "S", "", category)
        service.triggers = [
            TriggerRecord(f"s.t{i}", f"t{i}", "s") for i in range(n_triggers)
        ]
        service.actions = [
            ActionRecord(f"s.a{i}", f"a{i}", "s") for i in range(n_actions)
        ]
        return service

    def test_email_category_has_extras(self):
        assert scope_universe(self._service(13, 2, 1)) == 2 + 1 + 3

    def test_smarthome_has_no_extras(self):
        assert scope_universe(self._service(1, 3, 4)) == 7


class TestPermissionStudy:
    @pytest.fixture(scope="class")
    def result(self, small_corpus):
        return run_permission_study(small_corpus, n_users=300, mean_installs=5.0, seed=11)

    def test_population_size(self, result):
        assert result.n_users == 300
        assert result.mean_installs >= 1.0

    def test_coarse_always_overgrants(self, result):
        assert result.mean_scopes_granted_coarse > result.mean_scopes_needed
        assert result.mean_overgrant_factor > 1.5

    def test_excess_is_pervasive(self, result):
        """Nearly every user carries unneeded scopes under the coarse model."""
        assert result.users_with_excess > 0.9
        assert 0.2 < result.mean_excess_ratio < 0.95
        assert result.worst_excess_ratio <= 1.0

    def test_deterministic(self, small_corpus):
        a = run_permission_study(small_corpus, n_users=50, seed=3)
        b = run_permission_study(small_corpus, n_users=50, seed=3)
        assert a == b

    def test_validation(self, small_corpus):
        with pytest.raises(ValueError):
            run_permission_study(small_corpus, n_users=0)
