"""End-to-end checks of the metrics pipeline on a real testbed run.

One §4-style measurement run must light up the poll, RTT, action, and
simulator metrics — and the live instrumentation must agree with the
:func:`~repro.obs.bridge.bridge_trace` fold of the very same run's
trace, record for record.
"""

import pytest

from repro.obs import bridge_trace, poll_latency_summary
from repro.testbed.controller import TestController
from repro.testbed.testbed import Testbed, TestbedConfig


@pytest.fixture(scope="module")
def measured_testbed():
    """One A2 measurement run shared by every test in the module."""
    testbed = Testbed(TestbedConfig(seed=11)).build()
    controller = TestController(testbed)
    controller.install("A2")
    latencies = controller.measure_t2a("A2", runs=3, spacing=150.0)
    return testbed, latencies


class TestLiveMetrics:
    def test_run_produces_nonzero_poll_metrics(self, measured_testbed):
        testbed, _ = measured_testbed
        registry = testbed.metrics
        assert registry.total("engine.polls_sent") > 0
        assert registry.get("engine.poll_rtt_seconds").count > 0
        assert registry.get("engine.poll_batch_new").count > 0

    def test_actions_and_t2a_light_up(self, measured_testbed):
        testbed, latencies = measured_testbed
        registry = testbed.metrics
        dispatched = registry.total("engine.actions_dispatched")
        assert dispatched >= len(latencies) > 0
        t2a = registry.get("engine.t2a_seconds", service="philips_hue")
        assert t2a is not None and t2a.count == dispatched
        # T2A through the engine's clock must bracket the controller's
        # device-observed latencies (engine sees a slice of the full path).
        assert 0 < t2a.min <= max(latencies)

    def test_network_and_http_layers_observe_traffic(self, measured_testbed):
        testbed, _ = measured_testbed
        registry = testbed.metrics
        assert registry.total("net.messages_delivered") > 0
        assert registry.total("http.requests_issued") > 0
        delivery = registry.get("net.delivery_seconds")
        assert delivery is not None and delivery.count > 0

    def test_services_count_their_polls(self, measured_testbed):
        testbed, _ = measured_testbed
        registry = testbed.metrics
        assert registry.total("service.polls_served") == registry.total(
            "engine.polls_sent"
        )
        assert registry.get("service.poll_batch_size", service="wemo").count > 0

    def test_simulator_reports_progress(self, measured_testbed):
        testbed, _ = measured_testbed
        registry = testbed.metrics
        assert registry.value("sim.events_fired") > 0
        assert registry.value("sim.runs") > 0
        # The gauge is stamped at the end of the last run segment that
        # fired events, so it can trail sim.now by an idle tail.
        assert 0 < registry.value("sim.time_seconds") <= testbed.sim.now


class TestBridgeCrossCheck:
    def test_bridge_counters_match_live_and_trace(self, measured_testbed):
        testbed, _ = measured_testbed
        bridged = bridge_trace(testbed.trace)
        polls = len(testbed.trace.query(kind="engine_poll_sent"))
        assert polls > 0
        assert bridged.total("trace.records") == len(testbed.trace)
        assert (
            bridged.value("trace.records", kind="engine_poll_sent", source="engine")
            == polls
            == testbed.metrics.total("engine.polls_sent")
        )

    def test_bridge_rtts_equal_live_rtts(self, measured_testbed):
        # Both sides time the same send/response pairs off the same
        # simulated clock, so they must agree to the float bit.
        testbed, _ = measured_testbed
        bridged = bridge_trace(testbed.trace)
        for live_name, bridged_name in (
            ("engine.poll_rtt_seconds", "trace.poll_rtt_seconds"),
            ("engine.action_rtt_seconds", "trace.action_rtt_seconds"),
        ):
            live = testbed.metrics.get(live_name)
            folded = bridged.get(bridged_name)
            assert live.count == folded.count > 0
            assert live.total == pytest.approx(folded.total)

    def test_poll_latency_summary_landmarks(self, measured_testbed):
        testbed, _ = measured_testbed
        summary = poll_latency_summary(testbed.trace)
        assert summary["n"] > 0
        assert 0 < summary["p50"] <= summary["p95"] <= summary["p99"]


class TestDisabledMetrics:
    def test_testbed_runs_without_a_registry(self):
        testbed = Testbed(TestbedConfig(seed=11, metrics_enabled=False)).build()
        controller = TestController(testbed)
        controller.install("A2")
        testbed.run_for(600.0)
        assert testbed.metrics is None
        assert len(testbed.trace) > 0  # tracing is independent of metrics
