"""Shared fixtures.

Corpus generation and crawling are deterministic and moderately
expensive, so the small reference corpus and its crawl are session-scoped;
testbeds mutate during experiments and are function-scoped.
"""

from __future__ import annotations

import pytest

from repro.crawler import IftttCrawler, SnapshotStore
from repro.ecosystem import EcosystemGenerator, EcosystemParams
from repro.frontend import SimulatedIftttSite
from repro.simcore import Rng, Simulator, Trace
from repro.testbed import Testbed, TestbedConfig, TestController


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> Rng:
    return Rng(seed=1234, name="test")


@pytest.fixture
def trace() -> Trace:
    return Trace()


@pytest.fixture(scope="session")
def small_corpus():
    """A scale-0.02 corpus (6400 applets) shared across analysis tests."""
    return EcosystemGenerator(EcosystemParams(scale=0.02, seed=42)).generate()


@pytest.fixture(scope="session")
def small_site(small_corpus):
    return SimulatedIftttSite(small_corpus)


@pytest.fixture(scope="session")
def small_snapshot(small_site):
    """The final-week crawl of the small corpus."""
    return IftttCrawler(small_site).crawl()


@pytest.fixture(scope="session")
def snapshot_store(small_site):
    """A five-snapshot store spanning the study window."""
    crawler = IftttCrawler(small_site)
    store = SnapshotStore()
    for week in (0, 6, 12, 18, 24):
        store.add(crawler.crawl(week=week))
    return store


@pytest.fixture
def testbed() -> Testbed:
    """A freshly built testbed with production engine behaviour."""
    return Testbed(TestbedConfig(seed=99)).build()


@pytest.fixture
def controller(testbed) -> TestController:
    return TestController(testbed)


# -- chaos runs (shared: each is deterministic in its seed but takes a
# -- nontrivial slice of wall-clock, so suites share one run) ----------------


@pytest.fixture(scope="session")
def outage_result():
    """One shared run of the flagship 60 s-outage-during-burst scenario."""
    from repro.testbed.chaos import run_chaos_scenario

    return run_chaos_scenario("outage", seed=7)


@pytest.fixture(scope="session")
def nofault_result():
    """A fault-free single-engine run of the outage cadence — the
    unsharded latency baseline the acceptance criteria reference."""
    from repro.faults import FaultPlan
    from repro.testbed.chaos import run_chaos_scenario

    return run_chaos_scenario("outage", seed=7, plan=FaultPlan(()))


@pytest.fixture(scope="session")
def sharded_outage_result():
    """The same outage scenario against a 4-shard fleet (same seed)."""
    from repro.testbed.chaos import run_sharded_chaos_scenario

    return run_sharded_chaos_scenario("outage", seed=7, num_shards=4)


@pytest.fixture(scope="session")
def sharded_nofault_result():
    """A fault-free 4-shard run of the outage cadence — the isolation
    baseline sharded chaos tests compare healthy shards against."""
    from repro.faults import FaultPlan
    from repro.testbed.chaos import run_sharded_chaos_scenario

    return run_sharded_chaos_scenario(
        "outage", seed=7, num_shards=4, plan=FaultPlan(())
    )
