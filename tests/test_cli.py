"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_t2a_applet_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["t2a", "--applet", "A9"])


class TestCommands:
    def test_t2a_e3(self, capsys):
        assert main(["t2a", "--applet", "A2", "--scenario", "E3", "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "A2 under E3" in out
        assert "p50=" in out

    def test_t2a_unknown_scenario(self, capsys):
        assert main(["t2a", "--scenario", "E9", "--runs", "1"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_timeline(self, capsys):
        assert main(["timeline", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "polls trigger service" in out

    def test_loops_explicit(self, capsys):
        assert main(["loops", "--kind", "explicit", "--duration", "1800"]) == 0
        out = capsys.readouterr().out
        assert "self-sustained: True" in out
        assert "static analysis (blind): 1" in out

    def test_loops_runtime_detection(self, capsys):
        assert main(["loops", "--kind", "implicit", "--duration", "3600",
                     "--runtime-detection"]) == 0
        out = capsys.readouterr().out
        assert "flagged" in out

    def test_fleet(self, capsys):
        assert main(["fleet", "--applets", "10", "--publications", "1"]) == 0
        out = capsys.readouterr().out
        assert "actions executed: 10" in out

    def test_ecosystem_with_save(self, capsys, tmp_path):
        path = tmp_path / "snapshots.json"
        assert main(["ecosystem", "--scale", "0.005", "--save", str(path)]) == 0
        out = capsys.readouterr().out
        assert "IoT:" in out
        assert path.exists()


class TestChaosCommand:
    def test_chaos_sharded_run(self, capsys):
        assert main(["chaos", "--scenario", "outage", "--shards", "4"]) == 0
        out = capsys.readouterr().out
        assert "sharded chaos scenario 'outage'" in out
        assert "shards=4" in out
        assert "(victim)" in out
        assert "silently-lost=0" in out

    def test_chaos_sharded_snapshot_deterministic(self, capsys, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path in (a, b):
            assert main(["chaos", "--scenario", "outage", "--seed", "7",
                         "--shards", "4", "--snapshot", str(path)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_chaos_shards_one_is_single_engine_world(self, capsys):
        assert main(["chaos", "--scenario", "outage", "--shards", "1"]) == 0
        out = capsys.readouterr().out
        assert "sharded" not in out
        assert "silently-lost=0" in out

    def test_chaos_invalid_shards_rejected(self, capsys):
        assert main(["chaos", "--scenario", "outage", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_chaos_invalid_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--shard-strategy", "modulo"])

    def test_chaos_replay_reports_catchup_burst(self, capsys):
        assert main(["chaos", "--scenario", "outage", "--replay"]) == 0
        out = capsys.readouterr().out
        assert "replay [batched (limit=50)]" in out
        assert "catch-up burst" in out
        assert "unbatched" in out
        assert "silently-lost=0" in out

    def test_chaos_replay_snapshot_deterministic(self, capsys, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path in (a, b):
            assert main(["chaos", "--scenario", "outage", "--seed", "7",
                         "--replay", "--snapshot", str(path)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
        assert b"engine.replay." in a.read_bytes()

    def test_chaos_replay_sharded(self, capsys):
        assert main(["chaos", "--scenario", "outage", "--shards", "4",
                     "--replay"]) == 0
        out = capsys.readouterr().out
        assert "sharded chaos scenario 'outage'" in out
        assert "replay [batched (limit=50)]" in out
        assert "silently-lost=0" in out

    def test_chaos_replay_invalid_batch_limit_rejected(self, capsys):
        assert main(["chaos", "--scenario", "outage", "--replay",
                     "--replay-batch-limit", "0"]) == 2
        assert "--replay-batch-limit" in capsys.readouterr().err

    def test_chaos_sharded_with_custom_plan(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            '{"faults": [{"kind": "service_outage", "service": "chaos_sink",'
            ' "at": 20.0, "duration": 10.0}]}'
        )
        assert main(["chaos", "--scenario", "outage", "--shards", "4",
                     "--faults", str(plan_path)]) == 0
        out = capsys.readouterr().out
        assert "activated=1" in out
        assert "silently-lost=0" in out


class TestNewCommands:
    def test_decompose(self, capsys):
        assert main(["decompose", "--runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "wait_for_poll" in out

    def test_export_figures(self, capsys, tmp_path):
        assert main(["export-figures", "--output", str(tmp_path),
                     "--scale", "0.005", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "fig4_a1_a4" in out
        assert (tmp_path / "fig2_heatmap.csv").exists()
