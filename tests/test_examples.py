"""Smoke tests: every example script must run clean to completion.

Examples are user-facing documentation; a broken example is a broken
promise.  Each test imports the script as a module and calls ``main()``
(the scripts assert their own success criteria internally).
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "smart_home_evening",
    "ecosystem_study",
    "performance_study",
    "loop_hazards",
    "conditions_and_queries",
    "day_in_the_life",
]


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name, capsys):
    module = load_example(name)
    if name == "ecosystem_study":
        module.main(0.005)  # keep the corpus tiny for CI speed
    else:
        module.main()
    out = capsys.readouterr().out
    assert "OK" in out  # every example prints "... OK" on success


def test_every_example_file_is_covered():
    on_disk = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)
