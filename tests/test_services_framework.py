"""Tests for the partner-service framework: buffers, endpoints, protocol."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import Address, FixedLatency, HttpNode, Network
from repro.services import (
    ActionEndpoint,
    PartnerService,
    TriggerBuffer,
    TriggerEndpoint,
    TriggerEvent,
)
from repro.services.endpoints import field_channel, match_fields_subset, static_channels
from repro.services.partner import ACTION_PATH, TRIGGER_PATH
from repro.simcore import Rng, Simulator


class TestTriggerEvent:
    def test_ids_unique_and_increasing(self):
        a = TriggerEvent.create(1.0)
        b = TriggerEvent.create(2.0)
        assert b.event_id > a.event_id

    def test_wire_format(self):
        event = TriggerEvent.create(5.0, subject="hi")
        wire = event.to_wire()
        assert wire["meta"]["id"] == event.event_id
        assert wire["meta"]["timestamp"] == 5.0
        assert wire["ingredients"] == {"subject": "hi"}


class TestTriggerBuffer:
    def test_fetch_newest_first(self):
        buffer = TriggerBuffer()
        events = [TriggerEvent.create(float(t)) for t in range(5)]
        for event in events:
            buffer.append(event)
        fetched = buffer.fetch(limit=3)
        assert [e.created_at for e in fetched] == [4.0, 3.0, 2.0]

    def test_fetch_does_not_consume(self):
        buffer = TriggerBuffer()
        buffer.append(TriggerEvent.create(1.0))
        assert len(buffer.fetch()) == 1
        assert len(buffer.fetch()) == 1

    def test_capacity_drops_oldest(self):
        buffer = TriggerBuffer(capacity=3)
        for t in range(5):
            buffer.append(TriggerEvent.create(float(t)))
        assert len(buffer) == 3
        assert buffer.dropped == 2
        assert buffer.latest().created_at == 4.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            TriggerBuffer(capacity=0)
        with pytest.raises(ValueError):
            TriggerBuffer().fetch(limit=-1)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=0, max_size=60),
           st.integers(min_value=0, max_value=80))
    def test_fetch_never_exceeds_limit_or_contents(self, times, limit):
        buffer = TriggerBuffer(capacity=50)
        for t in times:
            buffer.append(TriggerEvent.create(t))
        fetched = buffer.fetch(limit=limit)
        assert len(fetched) <= min(limit, len(buffer))
        # newest-appended first (insertion order, not timestamp order)
        assert all(a.event_id > b.event_id for a, b in zip(fetched, fetched[1:]))


class TestEndpointDeclarations:
    def test_bad_slug_rejected(self):
        with pytest.raises(ValueError):
            TriggerEndpoint(slug="has/slash", name="x")
        with pytest.raises(ValueError):
            ActionEndpoint(slug="", name="x")

    def test_match_fields_subset(self):
        assert match_fields_subset({"phrase": "hi", "x": 1}, {"phrase": "hi"})
        assert not match_fields_subset({"phrase": "hi"}, {"phrase": "bye"})
        assert not match_fields_subset({}, {"phrase": "hi"})
        assert match_fields_subset({"anything": 1}, {})

    def test_static_channels(self):
        fn = static_channels(("hue", "lamp1"), ("hue", "lamp2"))
        assert fn({}) == frozenset({("hue", "lamp1"), ("hue", "lamp2")})

    def test_field_channel(self):
        fn = field_channel("sheets", "sheet")
        assert fn({"sheet": "songs"}) == frozenset({("sheets", "songs")})
        assert fn({}) == frozenset({("sheets", "*")})


@pytest.fixture
def wired_service():
    sim = Simulator()
    net = Network(sim, Rng(31))
    service = net.add_node(PartnerService(Address("svc.cloud"), slug="testsvc", service_time=0.0))
    engine = net.add_node(HttpNode(Address("engine.cloud")))
    net.connect(engine.address, service.address, FixedLatency(0.01))
    executed = []
    service.add_trigger(TriggerEndpoint(slug="thing_happened", name="Thing happened"))
    service.add_trigger(
        TriggerEndpoint(
            slug="exact_phrase",
            name="Exact phrase",
            matcher=match_fields_subset,
        )
    )
    service.add_action(
        ActionEndpoint(slug="do_thing", name="Do thing", executor=lambda fields: executed.append(fields) or "done")
    )
    return sim, net, service, engine, executed


class TestPartnerService:
    def test_duplicate_endpoint_rejected(self, wired_service):
        _, _, service, _, _ = wired_service
        with pytest.raises(ValueError):
            service.add_trigger(TriggerEndpoint(slug="thing_happened", name="dup"))
        with pytest.raises(ValueError):
            service.add_action(ActionEndpoint(slug="do_thing", name="dup"))

    def test_ingest_requires_known_slug(self, wired_service):
        _, _, service, _, _ = wired_service
        with pytest.raises(KeyError):
            service.ingest_event("nope", {})

    def test_register_identity_requires_known_trigger(self, wired_service):
        _, _, service, _, _ = wired_service
        with pytest.raises(KeyError):
            service.register_identity("nope", "id1", {})

    def test_ingest_routes_to_matching_identities(self, wired_service):
        _, _, service, _, _ = wired_service
        service.register_identity("exact_phrase", "id-a", {"phrase": "hello"})
        service.register_identity("exact_phrase", "id-b", {"phrase": "other"})
        hit = service.ingest_event("exact_phrase", {"phrase": "hello"})
        assert hit == 1
        assert len(service.buffer_for("id-a")) == 1
        assert len(service.buffer_for("id-b")) == 0

    def test_poll_registers_identity_and_returns_events(self, wired_service):
        sim, _, service, engine, _ = wired_service
        responses = []
        engine.post(
            service.address,
            TRIGGER_PATH + "thing_happened",
            body={"trigger_identity": "id-1", "triggerFields": {}, "limit": 50},
            on_response=responses.append,
        )
        sim.run()
        assert responses[0].ok
        assert responses[0].body == {"data": []}
        service.ingest_event("thing_happened", {"n": 1})
        service.ingest_event("thing_happened", {"n": 2})
        responses.clear()
        engine.post(
            service.address,
            TRIGGER_PATH + "thing_happened",
            body={"trigger_identity": "id-1", "triggerFields": {}, "limit": 1},
            on_response=responses.append,
        )
        sim.run()
        data = responses[0].body["data"]
        assert len(data) == 1  # limit respected
        assert data[0]["ingredients"]["n"] == 2  # newest first

    def test_poll_unknown_trigger_404(self, wired_service):
        sim, _, service, engine, _ = wired_service
        responses = []
        engine.post(service.address, TRIGGER_PATH + "ghost",
                    body={"trigger_identity": "x"}, on_response=responses.append)
        sim.run()
        assert responses[0].status == 404

    def test_poll_missing_identity_400(self, wired_service):
        sim, _, service, engine, _ = wired_service
        responses = []
        engine.post(service.address, TRIGGER_PATH + "thing_happened",
                    body={}, on_response=responses.append)
        sim.run()
        assert responses[0].status == 400

    def test_action_executes(self, wired_service):
        sim, _, service, engine, executed = wired_service
        responses = []
        engine.post(service.address, ACTION_PATH + "do_thing",
                    body={"actionFields": {"color": "blue"}}, on_response=responses.append)
        sim.run()
        assert responses[0].ok
        assert executed == [{"color": "blue"}]
        assert service.actions_executed == 1

    def test_action_unknown_404(self, wired_service):
        sim, _, service, engine, _ = wired_service
        responses = []
        engine.post(service.address, ACTION_PATH + "ghost",
                    body={"actionFields": {}}, on_response=responses.append)
        sim.run()
        assert responses[0].status == 404

    def test_service_key_authentication(self, wired_service):
        sim, _, service, engine, _ = wired_service
        service.published(engine.address, "key-123")
        responses = []
        engine.post(service.address, TRIGGER_PATH + "thing_happened",
                    body={"trigger_identity": "x"}, on_response=responses.append)
        sim.run()
        assert responses[0].status == 401
        assert service.auth_failures == 1
        responses.clear()
        engine.post(service.address, TRIGGER_PATH + "thing_happened",
                    body={"trigger_identity": "x"},
                    headers={"IFTTT-Service-Key": "key-123"},
                    on_response=responses.append)
        sim.run()
        assert responses[0].ok

    def test_bearer_token_authentication(self, wired_service):
        sim, _, service, engine, _ = wired_service
        service.grant_token("tok-abc")
        # a second valid token keeps enforcement on after the revoke below
        service.grant_token("tok-other")
        responses = []
        engine.post(service.address, TRIGGER_PATH + "thing_happened",
                    body={"trigger_identity": "x"},
                    headers={"Authorization": "Bearer wrong"},
                    on_response=responses.append)
        sim.run()
        assert responses[0].status == 401
        responses.clear()
        engine.post(service.address, TRIGGER_PATH + "thing_happened",
                    body={"trigger_identity": "x"},
                    headers={"Authorization": "Bearer tok-abc"},
                    on_response=responses.append)
        sim.run()
        assert responses[0].ok
        service.revoke_token("tok-abc")
        responses.clear()
        engine.post(service.address, TRIGGER_PATH + "thing_happened",
                    body={"trigger_identity": "x"},
                    headers={"Authorization": "Bearer tok-abc"},
                    on_response=responses.append)
        sim.run()
        assert responses[0].status == 401

    def test_realtime_hint_sent_on_ingest(self, wired_service):
        sim, net, service, engine, _ = wired_service
        service.realtime = True
        service.published(engine.address, "key-1")
        hints = []
        engine.add_route("POST", "/ifttt/v1/webhooks/service/notify",
                         lambda req: hints.append(req.body) or {"status": "ok"})
        service.register_identity("thing_happened", "id-1", {})
        service.ingest_event("thing_happened", {"n": 1})
        sim.run()
        assert hints and hints[0]["data"][0]["trigger_identity"] == "id-1"
        assert service.realtime_hints_sent == 1

    def test_no_hint_when_not_realtime(self, wired_service):
        sim, _, service, engine, _ = wired_service
        service.published(engine.address, "key-1")
        service.register_identity("thing_happened", "id-1", {})
        service.ingest_event("thing_happened", {"n": 1})
        sim.run()
        assert service.realtime_hints_sent == 0

    def test_status_endpoint(self, wired_service):
        sim, _, service, engine, _ = wired_service
        responses = []
        engine.get(service.address, "/ifttt/v1/status", on_response=responses.append)
        sim.run()
        assert responses[0].body["service"] == "testsvc"
