"""Tests for the ecosystem model: categories, popularity, IPF, generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecosystem import (
    CATEGORIES,
    Corpus,
    EcosystemGenerator,
    EcosystemParams,
    category,
    fit_interaction_matrix,
    fit_zipf_alpha,
    iot_categories,
    top_share,
    zipf_add_counts,
)
from repro.ecosystem.anchors import ANCHOR_SERVICES
from repro.ecosystem.categories import iot_service_share
from repro.ecosystem.corpus import AppletRecord, ServiceRecord
from repro.ecosystem.growth import (
    FINAL_WEEK,
    GROWTH_TARGETS,
    conditional_fraction,
    in_window_fraction,
    snapshot_date,
)
from repro.ecosystem.interactions import base_affinity_matrix, ipf_fit
from repro.ecosystem.naming import slugify
from repro.ecosystem.popularity import zipf_shares, zipf_top_share


class TestCategories:
    def test_fourteen_categories(self):
        assert len(CATEGORIES) == 14
        assert [c.index for c in CATEGORIES] == list(range(1, 15))

    def test_iot_is_first_four(self):
        assert [c.index for c in iot_categories()] == [1, 2, 3, 4]

    def test_iot_share_matches_paper(self):
        assert iot_service_share() == pytest.approx(51.7)

    def test_service_shares_sum_to_100(self):
        assert sum(c.pct_services for c in CATEGORIES) == pytest.approx(100.0, abs=0.5)

    def test_lookup(self):
        assert category(13).name == "Email"
        with pytest.raises(KeyError):
            category(0)

    def test_table1_headline_values(self):
        assert category(1).pct_services == 37.7
        assert category(7).trigger_ac_pct == 20.0
        assert category(9).action_ac_pct == 27.4
        assert category(12).action_ac_pct == 0.0


class TestPopularity:
    def test_shares_normalized_and_decreasing(self):
        shares = zipf_shares(100, 1.5)
        assert sum(shares) == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(shares, shares[1:]))

    def test_shift_flattens_head(self):
        plain = zipf_shares(1000, 1.5)
        shifted = zipf_shares(1000, 1.5, shift=50)
        assert shifted[0] < plain[0]

    def test_top_share_basic(self):
        assert top_share([100, 1, 1, 1, 1, 1, 1, 1, 1, 1], 0.1) == pytest.approx(100 / 109)

    def test_top_share_validation(self):
        with pytest.raises(ValueError):
            top_share([], 0.1)
        with pytest.raises(ValueError):
            top_share([1], 0.0)

    def test_fit_zipf_alpha_recovers_target(self):
        alpha = fit_zipf_alpha(10_000, 0.01, 0.5)
        assert zipf_top_share(10_000, alpha, 0.01) == pytest.approx(0.5, abs=0.01)

    def test_add_counts_exact_total_and_order(self):
        counts = zipf_add_counts(100, 1.5, 10_000, shift=2)
        assert sum(counts) == 10_000
        assert all(c >= 1 for c in counts)
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_add_counts_total_too_small_rejected(self):
        with pytest.raises(ValueError):
            zipf_add_counts(100, 1.5, 50)

    @given(st.integers(min_value=2, max_value=500),
           st.floats(min_value=0.3, max_value=2.5))
    @settings(max_examples=30)
    def test_add_counts_invariants(self, n, alpha):
        total = n * 10
        counts = zipf_add_counts(n, alpha, total)
        assert sum(counts) == total
        assert min(counts) >= 1


class TestInteractionMatrix:
    def test_ipf_matches_marginals(self):
        matrix = fit_interaction_matrix()
        rows = [sum(row) for row in matrix]
        cols = [sum(matrix[i][j] for i in range(14)) for j in range(14)]
        trigger_total = sum(c.trigger_ac_pct for c in CATEGORIES)
        action_total = sum(c.action_ac_pct for c in CATEGORIES)
        for cat, row_sum in zip(CATEGORIES, rows):
            assert row_sum == pytest.approx(cat.trigger_ac_pct / trigger_total, abs=1e-6)
        for cat, col_sum in zip(CATEGORIES, cols):
            assert col_sum == pytest.approx(cat.action_ac_pct / action_total, abs=1e-6)

    def test_time_location_action_column_zero(self):
        matrix = fit_interaction_matrix()
        assert all(matrix[i][11] == 0 for i in range(14))  # category 12 actions

    def test_affinity_hotspots_survive_ipf(self):
        """The boosted cells stay hot relative to an unboosted baseline."""
        matrix = fit_interaction_matrix()
        flat = ipf_fit(
            [[1.0] * 14 for _ in range(14)],
            [c.trigger_ac_pct for c in CATEGORIES],
            [c.action_ac_pct for c in CATEGORIES],
        )
        # social->social (10,10) was boosted 8x
        assert matrix[9][9] > 2 * flat[9][9]

    def test_ipf_validation(self):
        with pytest.raises(ValueError):
            ipf_fit([[1.0]], [1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            ipf_fit([[1.0]], [0.0], [1.0])

    def test_base_matrix_positive(self):
        assert all(cell >= 1.0 for row in base_affinity_matrix() for cell in row)


class TestGrowthHelpers:
    def test_in_window_fraction(self):
        assert in_window_fraction(0.0) == 0.0
        assert in_window_fraction(0.11) == pytest.approx(1 - 1 / 1.11)
        with pytest.raises(ValueError):
            in_window_fraction(-0.1)

    def test_conditional_fraction_bounds(self):
        frac = conditional_fraction(0.31, 0.11)
        assert 0 < frac < in_window_fraction(0.31)
        assert conditional_fraction(0.05, 0.11) == 0.0

    def test_snapshot_dates(self):
        assert snapshot_date(0) == "2016-11-24"
        assert snapshot_date(4) == "2016-12-22"


class TestParams:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            EcosystemParams(scale=0.0)
        with pytest.raises(ValueError):
            EcosystemParams(scale=1.5)

    def test_positive_counts_enforced(self):
        with pytest.raises(ValueError):
            EcosystemParams(n_services=0)

    def test_scaled_counts(self):
        params = EcosystemParams(scale=0.1)
        assert params.scaled_applets == 32_000
        assert params.scaled_users == 13_554

    def test_small_preset(self):
        assert EcosystemParams.small().scaled_applets == 6400


class TestGenerator:
    def test_exact_universe_sizes(self, small_corpus):
        summary = small_corpus.summary()
        assert summary["services"] == 408
        assert summary["triggers"] == 1490
        assert summary["actions"] == 957
        assert summary["applets"] == 6400
        assert summary["add_count"] == 460_000

    def test_category_apportionment(self, small_corpus):
        by_cat = {}
        for service in small_corpus.services_at():
            by_cat[service.category_index] = by_cat.get(service.category_index, 0) + 1
        for cat in CATEGORIES:
            expected = 408 * cat.pct_services / 100
            assert by_cat.get(cat.index, 0) == pytest.approx(expected, abs=1.5)

    def test_iot_share(self, small_corpus):
        iot = [s for s in small_corpus.services_at() if s.category_index <= 4]
        assert len(iot) / 408 == pytest.approx(0.517, abs=0.01)

    def test_anchor_services_present(self, small_corpus):
        slugs = set(small_corpus.services)
        for anchor in ("amazon_alexa", "philips_hue", "fitbit", "nest_thermostat",
                       "egg_minder", "samsung_smartthings"):
            assert anchor in slugs

    def test_anchor_signature_endpoints(self, small_corpus):
        alexa = small_corpus.service("amazon_alexa")
        trigger_names = [t.name for t in alexa.triggers]
        assert "Say a phrase" in trigger_names
        hue = small_corpus.service("philips_hue")
        action_names = [a.name for a in hue.actions]
        assert "Turn on lights" in action_names

    def test_applet_popularity_tail(self, small_corpus):
        adds = [a.add_count for a in small_corpus.applets_at()]
        assert top_share(adds, 0.01) == pytest.approx(0.84, abs=0.06)
        assert top_share(adds, 0.10) == pytest.approx(0.97, abs=0.04)

    def test_user_made_fractions(self, small_corpus):
        applets = small_corpus.applets_at()
        user_frac = sum(a.author_is_user for a in applets) / len(applets)
        adds = sum(a.add_count for a in applets)
        user_adds = sum(a.add_count for a in applets if a.author_is_user)
        assert user_frac == pytest.approx(0.98, abs=0.02)
        assert user_adds / adds == pytest.approx(0.86, abs=0.06)

    def test_applet_ids_six_digit_and_sparse(self, small_corpus):
        low, high = small_corpus.applet_id_bounds()
        assert low == 100000
        assert high <= 999999
        assert high - low > len(small_corpus.applets)  # gaps exist

    def test_growth_trajectory(self, small_corpus):
        start = small_corpus.summary(0)
        end = small_corpus.summary(FINAL_WEEK)
        for key, target in GROWTH_TARGETS.items():
            realized = end[key] / start[key] - 1.0
            # Small-scale corpora carry binomial noise on creation weeks.
            assert realized == pytest.approx(target, abs=0.08), key

    def test_determinism(self):
        params = EcosystemParams(scale=0.005, seed=77)
        a = EcosystemGenerator(params).generate().summary()
        b = EcosystemGenerator(params).generate().summary()
        assert a == b

    def test_different_seeds_differ(self):
        a = EcosystemGenerator(EcosystemParams(scale=0.005, seed=1)).generate()
        b = EcosystemGenerator(EcosystemParams(scale=0.005, seed=2)).generate()
        ids_a = sorted(a.applets)[:50]
        ids_b = sorted(b.applets)[:50]
        assert ids_a != ids_b

    def test_applet_endpoints_exist_on_services(self, small_corpus):
        for applet in list(small_corpus.applets.values())[:500]:
            service = small_corpus.service(applet.trigger_service_slug)
            assert any(t.slug == applet.trigger_slug for t in service.triggers)
            service = small_corpus.service(applet.action_service_slug)
            assert any(a.slug == applet.action_slug for a in service.actions)


class TestCorpus:
    def test_duplicate_service_rejected(self):
        corpus = Corpus()
        corpus.add_service(ServiceRecord("x", "X", "", 1))
        with pytest.raises(ValueError):
            corpus.add_service(ServiceRecord("x", "X2", "", 1))

    def test_duplicate_applet_rejected(self):
        corpus = Corpus()
        record = AppletRecord(1, "a", "", "t", "s", "a", "s2", "u", True, 5)
        corpus.add_applet(record)
        with pytest.raises(ValueError):
            corpus.add_applet(record)

    def test_add_count_interpolation(self):
        applet = AppletRecord(1, "a", "", "t", "s", "a", "s2", "u", True,
                              add_count=1190, created_week=0)
        assert applet.add_count_at(24, 24) == 1190
        assert applet.add_count_at(0, 24) == pytest.approx(1000, abs=1)
        late = AppletRecord(2, "b", "", "t", "s", "a", "s2", "u", True,
                            add_count=100, created_week=12)
        assert late.add_count_at(6, 24) == 0
        assert late.add_count_at(12, 24) == 0
        assert late.add_count_at(18, 24) == 50

    def test_empty_bounds(self):
        assert Corpus().applet_id_bounds() == (0, 0)


def test_slugify():
    assert slugify("Amazon Alexa") == "amazon_alexa"
    assert slugify("UP by Jawbone!") == "up_by_jawbone"
    assert slugify("  Weird -- name ") == "weird_name"


def test_anchor_list_consistency():
    names = [a.name for a in ANCHOR_SERVICES]
    assert len(names) == len(set(names))
    assert all(1 <= a.category_index <= 14 for a in ANCHOR_SERVICES)
