"""Unit tests for generator-based processes."""

import pytest

from repro.simcore import Interrupt, Process, Signal, Timeout


class TestTimeout:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_process_sleeps_for_delay(self, sim):
        wakes = []

        def sleeper():
            yield Timeout(5.0)
            wakes.append(sim.now)

        Process(sim, sleeper())
        sim.run()
        assert wakes == [5.0]

    def test_sequential_timeouts_accumulate(self, sim):
        ticks = []

        def clock():
            for _ in range(3):
                yield Timeout(10.0)
                ticks.append(sim.now)

        Process(sim, clock())
        sim.run()
        assert ticks == [10.0, 20.0, 30.0]


class TestSignal:
    def test_fire_wakes_waiter_with_value(self, sim):
        got = []
        signal = Signal("data")

        def waiter():
            value = yield signal
            got.append(value)

        Process(sim, waiter())
        assert signal.waiting == 1
        signal.fire("payload")
        assert got == ["payload"]
        assert signal.waiting == 0

    def test_fire_wakes_all_waiters(self, sim):
        got = []
        signal = Signal()

        def waiter(tag):
            value = yield signal
            got.append((tag, value))

        Process(sim, waiter("a"))
        Process(sim, waiter("b"))
        woke = signal.fire(7)
        assert woke == 2
        assert got == [("a", 7), ("b", 7)]

    def test_refire_only_wakes_current_waiters(self, sim):
        signal = Signal()
        signal.fire("nobody")
        assert signal.fire_count == 1
        assert signal.last_value == "nobody"

    def test_process_can_wait_signal_then_timeout(self, sim):
        timeline = []
        signal = Signal()

        def worker():
            yield signal
            timeline.append(("signal", sim.now))
            yield Timeout(3.0)
            timeline.append(("timeout", sim.now))

        Process(sim, worker())
        sim.schedule(2.0, signal.fire)
        sim.run()
        assert timeline == [("signal", 2.0), ("timeout", 5.0)]


class TestProcess:
    def test_runs_first_segment_synchronously(self, sim):
        steps = []

        def proc():
            steps.append("started")
            yield Timeout(1.0)

        Process(sim, proc())
        assert steps == ["started"]

    def test_result_captured(self, sim):
        def proc():
            yield Timeout(1.0)
            return 42

        p = Process(sim, proc())
        sim.run()
        assert not p.alive
        assert p.result == 42

    def test_waiting_on_another_process(self, sim):
        order = []

        def child():
            yield Timeout(5.0)
            order.append("child-done")
            return "gift"

        def parent():
            value = yield child_process
            order.append(("parent-got", value))

        child_process = Process(sim, child())
        Process(sim, parent())
        sim.run()
        assert order == ["child-done", ("parent-got", "gift")]

    def test_waiting_on_finished_process_resumes(self, sim):
        def quick():
            return "done"
            yield  # pragma: no cover - makes it a generator

        def parent():
            value = yield finished
            results.append(value)

        results = []
        finished = Process(sim, quick())
        assert not finished.alive
        Process(sim, parent())
        sim.run()
        assert results == ["done"]

    def test_interrupt_cancels_pending_timeout(self, sim):
        state = []

        def sleeper():
            try:
                yield Timeout(100.0)
                state.append("woke")
            except Interrupt as exc:
                state.append(("interrupted", exc.cause))

        p = Process(sim, sleeper())
        sim.schedule(1.0, p.interrupt, "shutdown")
        sim.run()
        assert state == [("interrupted", "shutdown")]
        assert not p.alive

    def test_interrupt_dead_process_is_noop(self, sim):
        def quick():
            return None
            yield  # pragma: no cover

        p = Process(sim, quick())
        p.interrupt()  # must not raise

    def test_unsupported_yield_raises(self, sim):
        def bad():
            yield 42

        with pytest.raises(TypeError):
            Process(sim, bad())

    def test_crash_propagates_and_records(self, sim):
        def bad():
            if True:
                raise RuntimeError("boom")
            yield  # pragma: no cover

        with pytest.raises(RuntimeError):
            Process(sim, bad())

    def test_done_signal_fires_for_waiters(self, sim):
        def proc():
            yield Timeout(1.0)
            return "x"

        p = Process(sim, proc())
        assert p.alive
        sim.run()
        assert p.exception is None
