"""Unit and property tests for multi-engine sharding (docs/SHARDING.md).

Covers the :class:`~repro.engine.sharding.ShardedEngine` coordinator:
seed-stable assignment, partition completeness, strategy behaviour
(including popularity_balanced skew bounds), per-shard isolation of
breakers / RNGs / polling policies / metrics scopes, the shard snapshot
algebra (commutative merge), and the ``num_shards=1 ≡ plain engine``
equivalence.  The isolation regressions exist because the historical
failure mode — mutable state shared through a cloned prototype or a
module global — is invisible in single-engine suites.
"""

import functools
from dataclasses import dataclass
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    ActionRef,
    AdaptivePollingPolicy,
    BreakerPolicy,
    BreakerState,
    EngineConfig,
    FixedPollingPolicy,
    IftttEngine,
    PollingPolicy,
    SHARD_STRATEGIES,
    ShardedEngine,
    TriggerRef,
    merged_fleet_snapshot,
    shard_snapshot,
    stable_service_hash,
)
from repro.engine.oauth import OAuthAuthority
from repro.engine.sharding import APPLET_ID_STRIDE, shard_metric_ids
from repro.net import Address, FixedLatency, Network
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.services import ActionEndpoint, PartnerService, TriggerEndpoint
from repro.simcore import Rng, Simulator

N_SERVICES = 8


@dataclass
class FleetWorld:
    sim: Simulator
    net: Network
    fleet: ShardedEngine
    services: List[PartnerService]
    delivered: List[dict]
    metrics: MetricsRegistry


def build_fleet(
    num_shards=4, strategy="service_hash", n_services=N_SERVICES, seed=3,
    poll_interval=5.0,
) -> FleetWorld:
    """A fleet plus ``n_services`` dual-role (trigger+action) services."""
    sim = Simulator()
    rng = Rng(seed=seed, name="sharding-test")
    metrics = MetricsRegistry()
    sim.metrics = metrics
    net = Network(sim, rng.fork("network"), metrics=metrics)
    config = EngineConfig(
        poll_policy=FixedPollingPolicy(poll_interval), initial_poll_delay=0.5,
        num_shards=num_shards, shard_strategy=strategy,
    )
    fleet = ShardedEngine(net, config=config, rng=rng.fork("engine"))
    delivered: List[dict] = []
    services = []
    for i in range(n_services):
        service = net.add_node(PartnerService(
            Address(f"svc{i}.cloud"), slug=f"svc{i}", service_time=0.0,
        ))
        service.add_trigger(TriggerEndpoint(slug="ping", name="Ping"))
        service.add_action(ActionEndpoint(
            slug="record", name="Record",
            executor=lambda fields, i=i: delivered.append({"svc": i, **fields}),
        ))
        for shard in fleet.shards:
            net.connect(shard.address, service.address, FixedLatency(0.01))
        fleet.publish_service(service)
        authority = OAuthAuthority(service.slug)
        authority.register_user("alice", "pw")
        fleet.connect_service("alice", service, authority, "pw")
        services.append(service)
    return FleetWorld(sim, net, fleet, services, delivered, metrics)


def install(fleet, trigger_svc: int, action_svc: int = None, name=None):
    """Install svc<i>.ping -> svc<j>.record through the coordinator."""
    if action_svc is None:
        action_svc = trigger_svc
    return fleet.install_applet(
        user="alice", name=name or f"a{trigger_svc}->{action_svc}",
        trigger=TriggerRef(f"svc{trigger_svc}", "ping"),
        action=ActionRef(f"svc{action_svc}", "record", {"n": "{{n}}"}),
    )


class TestStableServiceHash:
    def test_deterministic_across_calls(self):
        assert stable_service_hash("gmail") == stable_service_hash("gmail")

    def test_pinned_value(self):
        # Seed-stability is the whole point: a silent hash change would
        # reshuffle every fleet's assignment. Pin a concrete value.
        assert stable_service_hash("chaos_sensor0") == 3303528287

    def test_in_32_bit_range(self):
        for slug in ("a", "gmail", "weather", "x" * 100):
            assert 0 <= stable_service_hash(slug) < 2 ** 32

    @given(slug=st.text(min_size=1, max_size=30), n=st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_modulo_is_valid_shard(self, slug, n):
        assert 0 <= stable_service_hash(slug) % n < n


class TestConfigValidation:
    def test_strategies_registry(self):
        assert SHARD_STRATEGIES == ("service_hash", "round_robin", "popularity_balanced")

    def test_defaults_single_shard(self):
        config = EngineConfig()
        assert config.num_shards == 1
        assert config.shard_strategy == "service_hash"

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(num_shards=0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(shard_strategy="modulo")

    def test_coordinator_rejects_bad_overrides(self):
        sim = Simulator()
        net = Network(sim, Rng(1))
        with pytest.raises(ValueError):
            ShardedEngine(net, num_shards=0)
        with pytest.raises(ValueError):
            ShardedEngine(net, shard_strategy="nope")


class TestAssignment:
    def test_service_hash_matches_hash_modulo(self):
        world = build_fleet(num_shards=4)
        for i in range(N_SERVICES):
            applet = install(world.fleet, i)
            expected = stable_service_hash(f"svc{i}") % 4
            assert world.fleet.shard_of(applet.applet_id) == expected

    def test_assignment_is_sticky(self):
        world = build_fleet(num_shards=4)
        first = install(world.fleet, 0)
        second = install(world.fleet, 0)
        assert (world.fleet.shard_of(first.applet_id)
                == world.fleet.shard_of(second.applet_id))

    @pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
    def test_identical_seeds_identical_assignment(self, strategy):
        def run():
            world = build_fleet(num_shards=4, strategy=strategy, seed=21)
            applets = [install(world.fleet, i % N_SERVICES) for i in range(12)]
            return [world.fleet.shard_of(a.applet_id) for a in applets]

        assert run() == run()

    def test_round_robin_cycles(self):
        world = build_fleet(num_shards=4, strategy="round_robin")
        shards = [world.fleet.shard_of(install(world.fleet, 0).applet_id)
                  for _ in range(8)]
        assert shards == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_popularity_balanced_picks_least_loaded(self):
        world = build_fleet(num_shards=3, strategy="popularity_balanced")
        # Three applets of svc0 pile onto shard 0 (sticky)...
        for _ in range(3):
            assert world.fleet.shard_of(install(world.fleet, 0).applet_id) == 0
        # ...so the next two new services go to the empty shards first.
        assert world.fleet.shard_of(install(world.fleet, 1).applet_id) == 1
        assert world.fleet.shard_of(install(world.fleet, 2).applet_id) == 2

    def test_popularity_balanced_bounds_skew(self):
        # A heavy-tailed workload: one hot service (12 applets), seven
        # cold ones.  Greedy least-loaded assignment keeps every other
        # shard within one cold service of the mean, so max-min is
        # bounded by the heaviest service — not by hash luck.
        world = build_fleet(num_shards=4, strategy="popularity_balanced")
        weights = [12, 1, 1, 1, 1, 1, 1, 1]
        for svc, weight in enumerate(weights):
            for _ in range(weight):
                install(world.fleet, svc)
        loads = world.fleet.shard_loads()
        assert sum(loads) == sum(weights)
        assert max(loads) - min(loads) <= max(weights)
        cold = sorted(loads)[:-1]            # shards without the hot service
        assert max(cold) - min(cold) <= 1    # cold shards stay near-even

    def test_assignments_cover_only_trigger_services(self):
        world = build_fleet(num_shards=4)
        install(world.fleet, 0, action_svc=5)
        assert set(world.fleet.assignments()) == {"svc0"}

    def test_uninstall_releases_load(self):
        world = build_fleet(num_shards=4)
        applet = install(world.fleet, 0)
        assert sum(world.fleet.shard_loads()) == 1
        world.fleet.uninstall_applet(applet.applet_id)
        assert sum(world.fleet.shard_loads()) == 0
        with pytest.raises(KeyError):
            world.fleet.shard_of(applet.applet_id)

    def test_engine_for_owns_the_applet(self):
        world = build_fleet(num_shards=4)
        for i in range(N_SERVICES):
            applet = install(world.fleet, i)
            owner = world.fleet.engine_for(applet.applet_id)
            assert applet.applet_id in [a.applet_id for a in owner.applets]

    def test_load_skew_metric(self):
        world = build_fleet(num_shards=2, strategy="round_robin")
        assert world.fleet.load_skew() == 0.0
        install(world.fleet, 0)
        install(world.fleet, 1)
        assert world.fleet.load_skew() == pytest.approx(1.0)

    @given(
        data=st.data(),
        num_shards=st.integers(1, 5),
        strategy=st.sampled_from(SHARD_STRATEGIES),
    )
    @settings(max_examples=20, deadline=None)
    def test_assignment_is_a_partition(self, data, num_shards, strategy):
        """Every applet lands on exactly one shard; nothing is dropped."""
        triggers = data.draw(st.lists(
            st.integers(0, N_SERVICES - 1), min_size=1, max_size=20))
        world = build_fleet(num_shards=num_shards, strategy=strategy)
        installed = [install(world.fleet, svc) for svc in triggers]
        ids = [a.applet_id for a in installed]
        assert len(set(ids)) == len(ids)
        per_shard = [{a.applet_id for a in shard.applets}
                     for shard in world.fleet.shards]
        for a, b in zip(per_shard, per_shard[1:]):
            assert not (a & b)
        assert set().union(*per_shard) == set(ids)
        assert world.fleet.shard_loads() == [len(s) for s in per_shard]
        for applet in installed:
            owner = world.fleet.shard_of(applet.applet_id)
            assert applet.applet_id in per_shard[owner]


class TestIsolation:
    """Regressions for the shared-mutable-state bug class.

    A breaker, RNG, polling policy, or counter reachable from two
    engines means one service's bad day corrupts an unrelated engine's
    behaviour — precisely what sharding exists to prevent.
    """

    def test_divergent_fault_histories_stay_separate(self):
        # Two engines, same (frozen, shareable) policies: hammering one
        # engine's breaker must leave the other's closed and untouched.
        sim = Simulator()
        net = Network(sim, Rng(5))
        config = EngineConfig(breaker_policy=BreakerPolicy(failure_threshold=3))
        a = net.add_node(IftttEngine(Address("a.cloud"), config=config, rng=Rng(1)))
        b = net.add_node(IftttEngine(Address("b.cloud"), config=config, rng=Rng(2)))
        for t in (1.0, 2.0, 3.0):
            a.breaker_for("svc").record_failure(t)
        assert a.breaker_for("svc").state is BreakerState.OPEN
        assert b.breaker_for("svc").state is BreakerState.CLOSED
        assert b.breaker_for("svc").transitions == []
        assert b.breaker_for("svc").shed_count == 0
        assert a.breaker_for("svc") is not b.breaker_for("svc")

    def test_fleet_breakers_are_per_shard(self):
        world = build_fleet(num_shards=4)
        victim = world.fleet.shards[2]
        for t in (1.0, 2.0, 3.0, 4.0, 5.0):
            victim.breaker_for("svc0").record_failure(t)
        assert victim.breaker_states()["svc0"] == "open"
        for index, shard in enumerate(world.fleet.shards):
            if index != 2:
                assert shard.breaker_states() == {}
        states = world.fleet.breaker_states()
        assert states[2]["svc0"] == "open"

    def test_base_clone_returns_fresh_copy(self):
        # Regression: the base PollingPolicy.clone() used to return
        # ``self``, silently sharing state across every applet cloned
        # from one prototype.  A stateful subclass that neglects to
        # override clone() must still get per-clone scalar state.
        class EwmaPolicy(PollingPolicy):
            def __init__(self):
                self.activity = 0.0

            def next_interval(self, rng):
                return 5.0

            def observe_events(self, count):
                self.activity += count

        prototype = EwmaPolicy()
        first, second = prototype.clone(), prototype.clone()
        assert first is not prototype and first is not second
        first.observe_events(3)
        assert second.activity == 0.0
        assert prototype.activity == 0.0

    def test_adaptive_policy_state_not_shared_across_engines(self):
        # One shared EngineConfig prototype, two engines: learning on
        # engine A's applet must not tilt engine B's polling.
        sim = Simulator()
        net = Network(sim, Rng(5))
        config = EngineConfig(poll_policy=AdaptivePollingPolicy(),
                              initial_poll_delay=0.5)
        engines = []
        for name in ("a", "b"):
            engine = net.add_node(IftttEngine(
                Address(f"{name}.cloud"), config=config, rng=Rng(1)))
            service = net.add_node(PartnerService(
                Address(f"svc-{name}.cloud"), slug="svc", service_time=0.0))
            service.add_trigger(TriggerEndpoint(slug="ping", name="Ping"))
            service.add_action(ActionEndpoint(slug="record", name="Record",
                                              executor=lambda f: None))
            net.connect(engine.address, service.address, FixedLatency(0.01))
            engine.publish_service(service)
            authority = OAuthAuthority("svc")
            authority.register_user("alice", "pw")
            engine.connect_service("alice", service, authority, "pw")
            engines.append(engine)
        applets = [
            engine.install_applet(
                user="alice", name="p", trigger=TriggerRef("svc", "ping"),
                action=ActionRef("svc", "record", {}),
            )
            for engine in engines
        ]
        policy_a = engines[0]._applets[applets[0].applet_id].policy
        policy_b = engines[1]._applets[applets[1].applet_id].policy
        assert policy_a is not policy_b is not config.poll_policy
        policy_a.observe_events(5)
        assert policy_a.activity > 0.0
        assert policy_b.activity == 0.0
        assert config.poll_policy.activity == 0.0

    def test_shard_poll_policies_are_distinct_objects(self):
        world = build_fleet(num_shards=4)
        prototypes = {id(shard.config.poll_policy) for shard in world.fleet.shards}
        assert len(prototypes) == 4

    def test_shard_rngs_are_independent_forks(self):
        world = build_fleet(num_shards=4)
        rngs = [shard.rng for shard in world.fleet.shards]
        assert len({id(r) for r in rngs}) == 4
        draws = [r.uniform(0, 1) for r in rngs]
        assert len(set(draws)) == 4

    def test_applet_id_ranges_are_disjoint(self):
        world = build_fleet(num_shards=3, strategy="round_robin")
        applets = [install(world.fleet, 0) for _ in range(9)]
        for applet in applets:
            shard = world.fleet.shard_of(applet.applet_id)
            start = 100000 + shard * APPLET_ID_STRIDE
            assert start <= applet.applet_id < start + APPLET_ID_STRIDE
        assert len({a.applet_id for a in applets}) == 9

    def test_metrics_namespaces_are_per_shard(self):
        world = build_fleet(num_shards=3)
        assert [shard.metrics_namespace for shard in world.fleet.shards] == [
            "engine.shard0", "engine.shard1", "engine.shard2"]

    def test_every_shard_caches_its_own_token(self):
        world = build_fleet(num_shards=3)
        tokens = [shard.tokens.lookup("alice", "svc0")
                  for shard in world.fleet.shards]
        assert all(tokens)
        assert len(set(tokens)) == 3  # separate OAuth flows, separate tokens


class TestHintTargeting:
    def test_service_hash_home_shard_publishes_last(self):
        world = build_fleet(num_shards=4)
        for i, service in enumerate(world.services):
            home = stable_service_hash(service.slug) % 4
            assert service.engine_address == world.fleet.shards[home].address

    def test_popularity_balanced_retargets_on_first_install(self):
        world = build_fleet(num_shards=4, strategy="popularity_balanced")
        service = world.services[5]
        applet = install(world.fleet, 5)
        home = world.fleet.shard_of(applet.applet_id)
        assert service.engine_address == world.fleet.shards[home].address

    def test_all_shard_keys_accepted(self):
        world = build_fleet(num_shards=4)
        service = world.services[0]
        assert len(service.service_keys) == 4
        for shard in world.fleet.shards:
            assert shard.service_registration("svc0").service_key in service.service_keys


def run_fleet_workload(num_shards, seed=11, events=6, until=40.0):
    """Install one applet per service, fire events, run, and snapshot."""
    world = build_fleet(num_shards=num_shards, seed=seed)
    applets = [install(world.fleet, i) for i in range(N_SERVICES)]
    for i in range(events):
        world.sim.schedule(2.0 + i, world.services[i % N_SERVICES].ingest_event,
                           "ping", {"n": i})
    world.sim.run_until(until)
    return world, applets


@functools.lru_cache(maxsize=None)
def _snapshot_fixture():
    """One cached 4-shard run used by the snapshot-algebra tests."""
    world, _ = run_fleet_workload(num_shards=4)
    return world.metrics.snapshot(), world.fleet.stats()


class TestSnapshotAlgebra:
    def test_shard_snapshot_rebases_names(self):
        snapshot, _ = _snapshot_fixture()
        for shard_id in shard_metric_ids(snapshot):
            rebased = shard_snapshot(snapshot, shard_id)
            assert rebased["metrics"], f"shard {shard_id} has no metrics"
            for entry in rebased["metrics"]:
                assert entry["name"].startswith("engine.")
                assert not entry["name"].startswith("engine.shard")

    def test_shard_metric_ids_found(self):
        snapshot, _ = _snapshot_fixture()
        assert shard_metric_ids(snapshot) == [0, 1, 2, 3]

    def test_merged_totals_match_fleet_stats(self):
        snapshot, stats = _snapshot_fixture()
        merged = merged_fleet_snapshot(snapshot)
        delivered = sum(e["value"] for e in merged["metrics"]
                        if e["name"] == "engine.actions_delivered")
        dispatched = sum(e["value"] for e in merged["metrics"]
                         if e["name"] == "engine.actions_dispatched")
        assert delivered == stats["actions_delivered"] > 0
        assert dispatched == stats["actions_dispatched"]

    def test_merge_accepts_registry_or_snapshot(self):
        world, _ = run_fleet_workload(num_shards=2, seed=23)
        assert (merged_fleet_snapshot(world.metrics)
                == merged_fleet_snapshot(world.metrics.snapshot()))

    def test_no_shard_metrics_merges_empty(self):
        assert merged_fleet_snapshot({"metrics": []}) == {"metrics": []}

    @given(order=st.permutations([0, 1, 2, 3]))
    @settings(max_examples=24, deadline=None)
    def test_merge_is_commutative_over_shard_order(self, order):
        snapshot, _ = _snapshot_fixture()
        shards = {i: shard_snapshot(snapshot, i) for i in range(4)}
        reordered = merge_snapshots(*(shards[i] for i in order))
        assert reordered == merged_fleet_snapshot(snapshot)

    def test_single_shard_merge_is_identity(self):
        world, _ = run_fleet_workload(num_shards=1, seed=17)
        snapshot = world.metrics.snapshot()
        merged = merged_fleet_snapshot(snapshot)
        rebased = merge_snapshots(shard_snapshot(snapshot, 0))
        assert merged == rebased


class TestSingleShardEquivalence:
    """num_shards=1 must behave exactly like one plain engine."""

    @staticmethod
    def _drive(engine_like, sim, services, events=6):
        applets = []
        for i in range(N_SERVICES):
            applets.append(engine_like.install_applet(
                user="alice", name=f"a{i}",
                trigger=TriggerRef(f"svc{i}", "ping"),
                action=ActionRef(f"svc{i}", "record", {"n": "{{n}}"}),
            ))
        for i in range(events):
            sim.schedule(2.0 + i, services[i % N_SERVICES].ingest_event,
                         "ping", {"n": i})
        sim.run_until(40.0)
        return applets

    def _plain_world(self, seed=11):
        sim = Simulator()
        rng = Rng(seed=seed, name="sharding-test")
        metrics = MetricsRegistry()
        sim.metrics = metrics
        net = Network(sim, rng.fork("network"), metrics=metrics)
        config = EngineConfig(poll_policy=FixedPollingPolicy(5.0),
                              initial_poll_delay=0.5)
        engine = net.add_node(IftttEngine(
            Address("engine0.cloud"), config=config, rng=rng.fork("engine")))
        delivered: List[dict] = []
        services = []
        for i in range(N_SERVICES):
            service = net.add_node(PartnerService(
                Address(f"svc{i}.cloud"), slug=f"svc{i}", service_time=0.0))
            service.add_trigger(TriggerEndpoint(slug="ping", name="Ping"))
            service.add_action(ActionEndpoint(
                slug="record", name="Record",
                executor=lambda fields, i=i: delivered.append({"svc": i, **fields})))
            net.connect(engine.address, service.address, FixedLatency(0.01))
            engine.publish_service(service)
            authority = OAuthAuthority(service.slug)
            authority.register_user("alice", "pw")
            engine.connect_service("alice", service, authority, "pw")
            services.append(service)
        return sim, engine, services, delivered

    def test_same_deliveries_and_counters(self):
        world = build_fleet(num_shards=1, seed=11)
        self._drive(world.fleet, world.sim, world.services)
        sim, engine, services, delivered = self._plain_world(seed=11)
        self._drive(engine, sim, services)
        assert world.delivered == delivered
        fleet_stats = world.fleet.stats()
        plain_stats = engine.stats()
        assert fleet_stats == plain_stats

    def test_single_shard_trivia(self):
        world = build_fleet(num_shards=1, seed=11)
        applet = install(world.fleet, 0)
        assert world.fleet.shard_of(applet.applet_id) == 0
        assert world.fleet.num_shards == 1
        for service in world.services:
            assert len(service.service_keys) == 1


class TestFleetAccounting:
    def test_stats_sum_shards_but_not_services(self):
        world, _ = run_fleet_workload(num_shards=4)
        stats = world.fleet.stats()
        per_shard = world.fleet.shard_stats()
        assert stats["applets"] == sum(s["applets"] for s in per_shard) == N_SERVICES
        assert stats["actions_delivered"] == sum(
            s["actions_delivered"] for s in per_shard)
        # Every shard publishes the same catalogue; don't quadruple-count.
        assert stats["services"] == N_SERVICES
        assert all(s["services"] == N_SERVICES for s in per_shard)

    def test_conservation_zero_when_healthy(self):
        world, _ = run_fleet_workload(num_shards=4)
        conservation = world.fleet.conservation()
        assert conservation["shard_lost"] == [0, 0, 0, 0]
        assert conservation["fleet_lost"] == 0

    def test_dead_letters_empty_when_healthy(self):
        world, _ = run_fleet_workload(num_shards=4)
        assert world.fleet.dead_letters == []

    def test_applets_property_spans_fleet(self):
        world, applets = run_fleet_workload(num_shards=4)
        assert ({a.applet_id for a in world.fleet.applets}
                == {a.applet_id for a in applets})

    def test_repr(self):
        world = build_fleet(num_shards=4)
        assert "shards=4" in repr(world.fleet)
        assert "service_hash" in repr(world.fleet)

    def test_not_collected_by_pytest(self):
        assert ShardedEngine.__test__ is False
