#!/usr/bin/env python
"""Offline fallback for `make lint` — a tiny mirror of the ruff rules.

Hermetic environments (no network, no ruff wheel) still need the lint
gate to run, so this checker implements exactly the rule set selected
in ``ruff.toml`` and nothing more:

* F401  unused import (skipped in ``__init__.py``, honours ``__all__``)
* E711  comparison to ``None`` with ``==`` / ``!=``
* E712  comparison to ``True`` / ``False`` with ``==`` / ``!=``
* E722  bare ``except:``
* E731  lambda assigned to a name at statement level

``# noqa`` comments (bare, or listing the code) suppress a finding on
their line, as ruff would.  Exit status 1 when anything is flagged.
"""

from __future__ import annotations

import ast
import os
import re
import sys
from typing import Iterator, List, Tuple

EXCLUDED_DIRS = {".git", "__pycache__", "figures", "experiment-results", ".exp-smoke-a", ".exp-smoke-b"}

Finding = Tuple[str, int, str, str]  # path, line, code, message


def python_files(root: str) -> Iterator[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in EXCLUDED_DIRS]
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _noqa_codes(line: str) -> "set[str] | None":
    """The codes a ``# noqa`` comment suppresses (empty set = all)."""
    match = re.search(r"#\s*noqa(?::\s*([A-Z0-9, ]+))?", line)
    if match is None:
        return None
    if match.group(1) is None:
        return set()
    return {code.strip() for code in match.group(1).split(",") if code.strip()}


def _suppressed(lines: List[str], lineno: int, code: str) -> bool:
    if not 1 <= lineno <= len(lines):
        return False
    codes = _noqa_codes(lines[lineno - 1])
    if codes is None:
        return False
    return not codes or code in codes


def _dotted_root(name: str) -> str:
    return name.split(".", 1)[0]


def check_file(path: str) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, "E999", f"syntax error: {exc.msg}")]
    lines = source.splitlines()
    findings: List[Finding] = []

    def flag(node: ast.AST, code: str, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if not _suppressed(lines, lineno, code):
            findings.append((path, lineno, code, message))

    # -- F401: imports whose bound name never appears again ----------------
    if os.path.basename(path) != "__init__.py":
        exported: "set[str]" = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets)
                and isinstance(node.value, (ast.List, ast.Tuple))
            ):
                exported |= {
                    elt.value
                    for elt in node.value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                }
        for node in ast.walk(tree):
            names = []
            if isinstance(node, ast.Import):
                names = [(alias, _dotted_root(alias.asname or alias.name)) for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module != "__future__":
                names = [
                    (alias, alias.asname or alias.name)
                    for alias in node.names
                    if alias.name != "*"
                ]
            for alias, bound in names:
                if bound in exported or bound.startswith("_"):
                    continue
                # Count whole-word occurrences anywhere in the file
                # (covers string annotations and docstring references);
                # more than the import line itself means "used".
                uses = len(re.findall(rf"\b{re.escape(bound)}\b", source))
                if uses <= 1:
                    flag(node, "F401", f"{alias.name!r} imported but unused")

    for node in ast.walk(tree):
        # -- E711 / E712 ----------------------------------------------------
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (node.left, comparator):
                    if isinstance(side, ast.Constant):
                        if side.value is None:
                            flag(node, "E711", "comparison to None (use 'is'/'is not')")
                        elif side.value is True or side.value is False:
                            flag(node, "E712", "comparison to True/False (use 'is' or bare truth)")
        # -- E722 -----------------------------------------------------------
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            flag(node, "E722", "bare 'except:'")
        # -- E731 -----------------------------------------------------------
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            if any(isinstance(t, ast.Name) for t in node.targets):
                flag(node, "E731", "lambda assigned to a name (use 'def')")
        elif isinstance(node, ast.AnnAssign) and isinstance(node.value, ast.Lambda):
            if isinstance(node.target, ast.Name):
                flag(node, "E731", "lambda assigned to a name (use 'def')")

    return findings


def main(argv: List[str]) -> int:
    root = argv[1] if len(argv) > 1 else "."
    findings: List[Finding] = []
    for path in python_files(root):
        findings.extend(check_file(path))
    for path, lineno, code, message in sorted(findings):
        print(f"{path}:{lineno}: {code} {message}")
    if findings:
        print(f"{len(findings)} lint finding(s)")
        return 1
    print("lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
