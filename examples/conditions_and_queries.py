"""The paper's future work, implemented: queries, conditions, multi-action.

§6 closes with "We plan to study future IFTTT features such as queries
and conditions."  This example shows all three extension features on the
full testbed:

* a **condition** (filter code) that only blinks the light for emails
  from the boss;
* a **query** feeding the condition — log songs to the spreadsheet only
  while the sheet still has fewer than 3 rows;
* a **multi-action applet** that turns on the Hue light AND the WeMo
  switch from one trigger — fixing Figure 7's divergence, because both
  actions dispatch from the same poll.

Run: ``python examples/conditions_and_queries.py``
"""

from repro.engine import ActionRef, EngineConfig, FixedPollingPolicy, QueryRef, TriggerRef
from repro.testbed import Testbed, TestbedConfig
from repro.testbed.testbed import TEST_EMAIL, TEST_USER


def main() -> None:
    config = TestbedConfig(
        seed=7,
        engine_config=EngineConfig(poll_policy=FixedPollingPolicy(3.0), initial_poll_delay=0.5),
    )
    testbed = Testbed(config).build()
    engine = testbed.engine

    print("1) condition: blink only for email from the boss")
    engine.install_applet(
        user=TEST_USER,
        name="Blink the light when the boss emails",
        trigger=TriggerRef("gmail", "new_email"),
        action=ActionRef("philips_hue", "blink_lights", {"lamp_id": "lamp1"}),
        filter_code="trigger.from contains 'boss'",
    )
    testbed.run_for(5.0)
    testbed.gmail.deliver_email(TEST_EMAIL, "newsletter@spam", "BUY NOW")
    testbed.run_for(30.0)
    print(f"   after spam:  lamp effect = {testbed.hue_lamp.get_state('effect')!r} "
          f"(filter skips: {engine.filter_skips})")
    testbed.gmail.deliver_email(TEST_EMAIL, "boss@corp", "status?")
    testbed.run_for(30.0)
    print(f"   after boss:  lamp effect = {testbed.hue_lamp.get_state('effect')!r}")

    print("\n2) query + condition: log songs while the sheet has < 3 rows")
    engine.install_applet(
        user=TEST_USER,
        name="Log songs until the sheet fills up",
        trigger=TriggerRef("amazon_alexa", "song_played"),
        action=ActionRef("google_sheets", "add_row", {"sheet": "songs", "row": "{{song}}"}),
        queries=(QueryRef("google_sheets", "row_count", {"sheet": "songs"}),),
        filter_code="queries.row_count.rows < 3",
    )
    testbed.run_for(5.0)
    for title in ("one", "two", "three", "four", "five"):
        testbed.echo.hear(f"Alexa, play {title}")
        testbed.run_for(40.0)  # let the row-count mirror refresh between songs
    rows = testbed.sheets.rows("songs")
    print(f"   songs logged: {[r[0] for r in rows]} "
          f"(queries sent: {engine.queries_sent}, filter skips: {engine.filter_skips})")

    print("\n3) multi-action: one trigger, two simultaneous actions")
    testbed.hue_lamp.apply_command({"on": False, "effect": "none"}, cause="reset")
    testbed.wemo.set_binary_state(False, cause="reset")
    testbed.run_for(10.0)
    engine.install_applet(
        user=TEST_USER,
        name="Evening scene: light AND switch from one phrase",
        trigger=TriggerRef("amazon_alexa", "say_phrase", {"phrase": "movie time"}),
        action=ActionRef("philips_hue", "turn_on_lights", {"lamp_id": "lamp1"}),
        extra_actions=(ActionRef("wemo", "activate_switch", {"device_id": "wemo1"}),),
    )
    testbed.run_for(5.0)
    testbed.echo.hear("Alexa, trigger movie time")
    testbed.run_for(30.0)
    sent = testbed.trace.times("engine_action_sent")[-2:]
    print(f"   lamp on = {testbed.hue_lamp.get_state('on')}, "
          f"switch on = {testbed.wemo.get_state('on')}")
    print(f"   the two action dispatches were {abs(sent[1] - sent[0])*1000:.1f} ms apart "
          "(Figure 7's two-applet workaround diverged by minutes)")

    assert testbed.hue_lamp.get_state("on") and testbed.wemo.get_state("on")
    assert len(rows) == 3
    print("\nconditions-and-queries demo OK")


if __name__ == "__main__":
    main()
