"""A full simulated day of household automation, summarized.

Uses the diurnal scenario generator to drive the testbed the way a
household does (morning/evening activity peaks, workday email stream,
drifting weather and temperature) with ten applets installed — the Table
4 suite plus three conditional/automation rules — then reports what the
platform did all day.

Run: ``python examples/day_in_the_life.py``
"""

from repro.engine import ActionRef, TriggerRef
from repro.reporting import render_table
from repro.testbed import DailyScenario, Testbed, TestbedConfig, TestController
from repro.testbed.scenario_gen import DAY
from repro.testbed.testbed import TEST_USER


def main() -> None:
    testbed = Testbed(TestbedConfig(seed=321)).build()
    controller = TestController(testbed)
    engine = testbed.engine

    for key in ("A1", "A2", "A3", "A4", "A5", "A6", "A7"):
        controller.install(key)
    engine.install_applet(
        user=TEST_USER, name="Rain turns the lights blue",
        trigger=TriggerRef("weather", "rain_starts"),
        action=ActionRef("philips_hue", "change_color", {"lamp_id": "lamp1", "color": "blue"}),
    )
    engine.install_applet(
        user=TEST_USER, name="Log only the boss's email",
        trigger=TriggerRef("gmail", "new_email"),
        action=ActionRef("google_sheets", "add_row",
                         {"sheet": "mail_log", "row": "{{from}}: {{subject}}"}),
        filter_code="trigger.from contains 'boss'",
    )
    engine.install_applet(
        user=TEST_USER, name="Cool the house when it gets warm",
        trigger=TriggerRef("nest_thermostat", "temperature_rises_above", {"threshold_c": 23.5}),
        action=ActionRef("nest_thermostat", "set_temperature",
                         {"device_id": "nest1", "target_c": 20.5}),
    )

    print("running one simulated day of household activity ...")
    scenario = DailyScenario(testbed, seed=42).start()
    testbed.run_for(DAY)
    scenario.stop()

    stats = scenario.stats
    print("\nwhat the household did:")
    print(render_table(
        ["activity", "count"],
        [["switch presses", stats.switch_presses],
         ["voice commands", stats.voice_commands],
         ["emails received", stats.emails],
         ["weather changes", stats.weather_changes],
         ["temperature readings", stats.temperature_updates]],
    ))

    print("\nwhat the platform did:")
    print(render_table(
        ["metric", "count"],
        [["polls sent", engine.polls_sent],
         ["actions dispatched", engine.actions_dispatched],
         ["realtime hints honoured", engine.realtime_hints_honoured],
         ["filter skips (non-boss mail)", engine.filter_skips],
         ["spreadsheet rows (wemo log)", testbed.sheets.row_count("wemo_log")],
         ["spreadsheet rows (boss mail)", testbed.sheets.row_count("mail_log")],
         ["songs logged", testbed.sheets.row_count("songs")],
         ["drive uploads", len(testbed.gdrive.files("me"))]],
    ))

    per_action_polls = engine.polls_sent / max(1, engine.actions_dispatched)
    print(f"\nthe engine issued {per_action_polls:.0f} polls per executed action — "
          "the §6 overhead argument in one number")

    assert engine.actions_dispatched > 30
    print("\nday-in-the-life OK")


if __name__ == "__main__":
    main()
