"""Quickstart: build a minimal trigger-action world and run one applet.

This wires the smallest useful IFTTT simulation by hand — an engine, one
partner service with a trigger and an action, one user, one applet — and
executes it end to end, printing the protocol exchanges from the trace.

Run: ``python examples/quickstart.py``
"""

from repro.engine import ActionRef, EngineConfig, FixedPollingPolicy, IftttEngine, TriggerRef
from repro.engine.oauth import OAuthAuthority
from repro.net import Address, Network, cloud_internal_latency
from repro.services import ActionEndpoint, PartnerService, TriggerEndpoint
from repro.simcore import Rng, Simulator, Trace


def main() -> None:
    # 1. A simulator, a network, and a shared trace.
    sim = Simulator()
    network = Network(sim, Rng(seed=1))
    trace = Trace()

    # 2. The IFTTT engine (poll every 5 s so the demo is quick).
    engine = network.add_node(IftttEngine(
        Address("engine.ifttt.cloud"),
        config=EngineConfig(poll_policy=FixedPollingPolicy(5.0)),
        rng=Rng(seed=2),
        trace=trace,
    ))

    # 3. A partner service exposing one trigger and one action.
    service = network.add_node(PartnerService(
        Address("doorbell.cloud"), slug="doorbell", trace=trace,
    ))
    service.add_trigger(TriggerEndpoint(
        slug="rang",
        name="Doorbell rang",
        ingredients=lambda event: {"visitor": event.get("visitor", "someone")},
    ))
    notifications = []
    service.add_action(ActionEndpoint(
        slug="notify",
        name="Send a notification",
        executor=lambda fields: notifications.append(fields["message"]),
    ))
    network.connect(engine.address, service.address, cloud_internal_latency())

    # 4. Publish the service, connect a user over OAuth2, install an applet.
    engine.publish_service(service)
    authority = OAuthAuthority("doorbell")
    authority.register_user("alice", "secret")
    engine.connect_service("alice", service, authority, "secret")
    applet = engine.install_applet(
        user="alice",
        name="If my doorbell rings, notify me with the visitor's name",
        trigger=TriggerRef("doorbell", "rang"),
        action=ActionRef("doorbell", "notify", {"message": "Ding dong: {{visitor}}!"}),
    )
    print(f"installed {applet!r}")

    # 5. Let the engine's registration poll land, then ring the doorbell.
    sim.run_until(3.0)
    service.ingest_event("rang", {"visitor": "the mail carrier"})
    sim.run_until(20.0)

    print(f"notifications delivered: {notifications}")
    print("\nprotocol timeline:")
    for record in trace.query(source="engine"):
        print(f"  t={record.time:7.3f}s  {record.kind:22s} {record.detail}")

    assert notifications == ["Ding dong: the mail carrier!"]
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
