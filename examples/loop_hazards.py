"""The infinite-loop hazards of §4, and the defenses of §6.

Demonstrates:

1. an **explicit** loop — two chained applets (email -> spreadsheet row,
   spreadsheet row -> email) that IFTTT installs without complaint;
2. an **implicit** loop — one applet plus the Sheets notify-on-edit
   feature, invisible to any offline analysis of the applet set;
3. the defenses: the static channel-graph analyzer (catches 1; catches 2
   only when the external automation is declared) and the runtime
   rate-limit kill switch (catches both).

Run: ``python examples/loop_hazards.py``
"""

from repro.testbed.loops import (
    run_explicit_loop_experiment,
    run_implicit_loop_experiment,
)


def describe(result) -> None:
    print(f"  after {result.duration/60:.0f} simulated minutes:")
    print(f"    spreadsheet rows added : {result.rows_added}")
    print(f"    emails received        : {result.emails_received}")
    print(f"    loop self-sustained    : {result.looped}")
    print(f"    static analysis (blind): {len(result.static_findings)} cycle(s) found")
    print(f"    static analysis (told about the notification feature): "
          f"{len(result.static_findings_with_external_knowledge)} cycle(s) found")
    if result.runtime_flagged:
        print(f"    runtime detector flagged applet(s) {result.runtime_flagged} "
              f"and disabled {result.disabled_applets}")


def main() -> None:
    print("1) EXPLICIT loop: 'email -> add row' + 'row added -> email me'")
    explicit = run_explicit_loop_experiment(duration=3600.0, seed=3)
    describe(explicit)
    for finding in explicit.static_findings:
        print(f"    cycle: {finding.describe()}")

    print("\n2) IMPLICIT loop: 'email -> add row' + Sheets notify-on-edit")
    implicit = run_implicit_loop_experiment(duration=3600.0, seed=3)
    describe(implicit)
    print("    -> exactly the paper's finding: IFTTT cannot detect this "
          "by analyzing applets offline")

    print("\n3) Same implicit loop with the runtime kill switch enabled")
    guarded = run_implicit_loop_experiment(duration=3600.0, seed=3, runtime_detection=True)
    describe(guarded)

    assert explicit.looped and implicit.looped
    assert implicit.static_findings == []
    assert guarded.rows_added < implicit.rows_added
    print("\nloop hazards demo OK")


if __name__ == "__main__":
    main()
