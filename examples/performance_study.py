"""Rerun the paper's §4 performance experiments.

Measures trigger-to-action latency for applet A2 under the production
engine and under E3's 1-second poller, captures a Table 5 execution
timeline, and demonstrates the sequential-clustering effect of Figure 6.

Run: ``python examples/performance_study.py``
"""

from repro.reporting import summarize_latencies
from repro.simcore.rng import quantiles
from repro.testbed import Testbed, TestbedConfig, TestController
from repro.testbed.scenarios import run_scenario_t2a
from repro.testbed.sequential import run_sequential_experiment
from repro.testbed.timeline import capture_timeline, format_timeline


def main() -> None:
    print("A2 on official services, production engine (20 runs)...")
    testbed = Testbed(TestbedConfig(seed=99)).build()
    controller = TestController(testbed)
    official = controller.measure_t2a("A2", runs=20, spacing=150.0)
    stats = summarize_latencies(official)
    print(f"  p25/p50/p75 = {stats['p25']:.0f}/{stats['p50']:.0f}/{stats['p75']:.0f} s, "
          f"max {stats['max']:.0f} s   (paper: 58/84/122 s, max ~15 min)")

    print("\nA2 under E3 (our engine, 1 s polls, 10 runs)...")
    e3 = run_scenario_t2a("E3", runs=10, seed=99, spacing=20.0)
    print(f"  median = {quantiles(e3, (0.5,))[0]:.2f} s   (paper: ~1-2 s)")
    print("  -> the performance bottleneck is the IFTTT engine itself")

    print("\nTable 5 — one A2 execution under E2:")
    print(format_timeline(capture_timeline(seed=5)))

    print("\nFigure 6 — trigger every 5 s, 30 times (A4):")
    sequential = run_sequential_experiment(applet_key="A4", triggers=30, interval=5.0, seed=7)
    for index, cluster in enumerate(sequential.clusters, 1):
        print(f"  cluster {index}: {len(cluster)} actions at t={cluster[0]:.0f}s")
    print("  -> actions arrive in clusters: each poll returns up to k=50 "
          "buffered trigger events")

    assert stats["p50"] > 10 * quantiles(e3, (0.5,))[0]
    print("\nperformance study OK")


if __name__ == "__main__":
    main()
