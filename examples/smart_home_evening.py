"""A smart-home evening on the full Figure 1 testbed.

The scenario the paper's introduction motivates: one home, many devices,
several applets coordinating them through IFTTT —

* "turn your hue lights blue whenever it starts to rain" (the paper's §2
  canonical example),
* A2: the WeMo wall switch turns on the Hue light,
* A5: Alexa voice control turns the light off at bedtime,
* A1: every switch activation is logged to a spreadsheet.

The script plays a simulated evening (weather turning, a person coming
home and flipping the switch, a voice command) and reports what the
automation did and how long each reaction took.

Run: ``python examples/smart_home_evening.py``
"""

from repro.engine import ActionRef, TriggerRef
from repro.testbed import Testbed, TestbedConfig, TestController
from repro.testbed.testbed import TEST_USER


def main() -> None:
    testbed = Testbed(TestbedConfig(seed=2024)).build()
    engine = testbed.engine
    controller = TestController(testbed)

    # -- install the evening's applets -------------------------------------
    engine.install_applet(
        user=TEST_USER,
        name="Turn my hue lights blue whenever it starts to rain",
        trigger=TriggerRef("weather", "rain_starts"),
        action=ActionRef("philips_hue", "change_color", {"lamp_id": "lamp1", "color": "blue"}),
    )
    controller.install("A2")   # wemo switch -> hue on
    controller.install("A5")   # alexa voice -> hue off
    controller.install("A1")   # wemo switch -> spreadsheet log
    testbed.run_for(10.0)

    def lamp_report(moment: str) -> None:
        lamp = testbed.hue_lamp
        print(f"  [{testbed.sim.now/60:6.1f} min] {moment}: lamp on={lamp.get_state('on')} "
              f"color={lamp.get_state('color')}")

    print("— 6 pm: rain moves in —")
    testbed.weather.set_conditions("home", "rain")
    testbed.run_for(600.0)  # the weather service is polled every minute
    lamp_report("after the rain trigger propagated")

    print("— 7 pm: someone comes home and flips the wall switch —")
    testbed.hue_lamp.apply_command({"on": False}, cause="manual")
    testbed.run_for(30.0)
    t_flip = testbed.sim.now
    testbed.wemo.press()
    testbed.run_for(600.0)
    lamp_report("after the switch press")
    on_events = [r for r in testbed.trace.query(kind="device_state_changed",
                                                source="lamp1", since=t_flip)
                 if r.get("key") == "on" and r.get("value") is True]
    if on_events:
        print(f"  A2 trigger-to-action latency: {on_events[0].time - t_flip:.1f} s "
              "(poll-bound, as §4 measures)")

    print("— 11 pm: bedtime voice command —")
    t_voice = testbed.sim.now
    testbed.echo.hear("Alexa, trigger light off")
    testbed.run_for(60.0)
    lamp_report("after 'Alexa, trigger light off'")
    off_events = [r for r in testbed.trace.query(kind="device_state_changed",
                                                 source="lamp1", since=t_voice)
                  if r.get("key") == "on" and r.get("value") is False]
    if off_events:
        print(f"  A5 trigger-to-action latency: {off_events[0].time - t_voice:.2f} s "
              "(realtime hints honoured for Alexa)")

    rows = testbed.sheets.rows("wemo_log")
    print(f"\nspreadsheet log has {len(rows)} row(s): {rows}")
    print(f"engine sent {engine.polls_sent} polls and dispatched "
          f"{engine.actions_dispatched} actions over the evening")

    assert testbed.hue_lamp.get_state("on") is False
    assert rows, "the switch press should have been logged"
    print("\nsmart-home evening OK")


if __name__ == "__main__":
    main()
