"""Rerun the paper's §3 measurement campaign end to end.

Generates a calibrated ecosystem, stands up the simulated ifttt.com
frontend, crawls weekly snapshots exactly as §3.1 describes (index page →
service pages → six-digit applet-id enumeration), and runs the §3.2
analyses: service classification, the Table 1 breakdown, IoT shares, the
Figure 3 tail, top IoT services, and the growth trajectory.

Run: ``python examples/ecosystem_study.py [scale]``  (default scale 0.05)
"""

import sys

from repro.analysis import (
    ServiceClassifier,
    add_count_top_shares,
    growth_percentages,
    iot_shares,
    table1,
    table3,
    user_contribution_stats,
)
from repro.crawler import IftttCrawler, SnapshotStore
from repro.ecosystem import EcosystemGenerator, EcosystemParams
from repro.frontend import SimulatedIftttSite
from repro.reporting import render_table


def main(scale: float = 0.05) -> None:
    print(f"generating ecosystem at scale {scale} ...")
    corpus = EcosystemGenerator(EcosystemParams(scale=scale, seed=2017)).generate()
    site = SimulatedIftttSite(corpus)
    crawler = IftttCrawler(site)

    print("crawling weekly snapshots (weeks 0, 12, 24) ...")
    store = SnapshotStore()
    for week in (0, 12, 24):
        snapshot = crawler.crawl(week=week)
        store.add(snapshot)
        print(f"  week {week:2d} ({snapshot.date}): {snapshot.summary()}")

    final = store.last()
    truth = {s.slug: s.category_index for s in corpus.services_at()}
    classifier = ServiceClassifier()
    accuracy = classifier.accuracy(final.services.values(), truth)
    print(f"\nservice classifier accuracy vs ground truth: {accuracy:.1%}")

    print("\nTable 1 — service category breakdown:")
    print(render_table(
        ["#", "Category", "%Svc", "Trig AC%", "Act AC%"],
        [[r.category_index, r.category_name[:38], r.pct_services,
          r.trigger_ac_pct, r.action_ac_pct] for r in table1(final)],
    ))

    shares = iot_shares(final)
    print(f"\nIoT: {shares.iot_service_fraction:.1%} of services "
          f"(paper: 51.7%), {shares.iot_add_fraction:.1%} of applet usage (paper: 16%)")

    tail = add_count_top_shares(final)
    print(f"top 1% of applets hold {tail[0.01]:.1%} of adds (paper: 84.1%)")

    top = table3(final, k=5)
    print("\ntop IoT trigger services:",
          ", ".join(f"{name} ({count})" for name, count in top.top_trigger_services))
    print("top IoT action services: ",
          ", ".join(f"{name} ({count})" for name, count in top.top_action_services))

    contrib = user_contribution_stats(final)
    print(f"\n{contrib.user_channels} user channels; "
          f"{contrib.user_made_applet_fraction:.1%} of applets user-made, "
          f"carrying {contrib.user_made_add_fraction:.1%} of adds")

    growth = growth_percentages(store)
    print("\ngrowth over the window (paper: +11% svc, +31% trig, +27% act, +19% adds):")
    for key, value in growth.items():
        print(f"  {key:10s} {value:+.1f}%")

    print("\necosystem study OK")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
